"""Full-detector checkpointing: ``AeroDetector.save()`` / ``AeroDetector.load()``.

One ``.npz`` artifact carries config, variant flags, model weights, scaler
statistics, training-tail context and POT calibration — a restored detector
scores bit-for-bit like the one that was saved, and compiled serving plans
can be built straight from disk without retraining.
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.core.variants import build_variant
from repro.nn import save_arrays
from repro.streaming import FleetManager


def _make_series(num_points, num_variates, seed=7):
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, num_variates)
    t = np.arange(num_points)
    base = 0.5 + 0.3 * np.sin(2.0 * np.pi * t[:, None] / 24.0 + phases[None, :])
    return base + 0.05 * rng.standard_normal((num_points, num_variates))


def _fast_config(**overrides):
    settings = dict(
        window=16, short_window=6, d_model=8, num_heads=2,
        train_stride=3, max_epochs_stage1=2, max_epochs_stage2=2, batch_size=8,
    )
    settings.update(overrides)
    return AeroConfig(**settings)


@pytest.fixture(scope="module")
def series():
    return _make_series(140, 5, seed=7), _make_series(80, 5, seed=11)


@pytest.fixture(scope="module")
def fitted(series):
    train, _ = series
    detector = AeroDetector(_fast_config())
    detector.fit(train)
    return detector


class TestRoundTrip:
    def test_scores_bit_equal_after_reload(self, fitted, series, tmp_path):
        _, test = series
        path = fitted.save(tmp_path / "detector.npz")
        restored = AeroDetector.load(path)
        assert np.array_equal(fitted.score(test), restored.score(test))
        assert fitted.threshold() == restored.threshold()
        assert np.array_equal(fitted.detect(test), restored.detect(test))

    def test_restored_model_is_in_eval_mode(self, fitted, tmp_path):
        path = fitted.save(tmp_path / "detector.npz")
        restored = AeroDetector.load(path)
        assert all(not module.training for module in restored.model.modules())

    def test_config_flags_and_history_survive(self, fitted, tmp_path):
        path = fitted.save(tmp_path / "detector.npz")
        restored = AeroDetector.load(path)
        assert restored.config == fitted.config
        assert restored.graph_mode == fitted.graph_mode
        assert restored.use_short_window == fitted.use_short_window
        assert restored.history.stage1_losses == pytest.approx(fitted.history.stage1_losses)
        assert restored.history.stage2_losses == pytest.approx(fitted.history.stage2_losses)

    def test_timestamped_context_survives(self, tmp_path):
        rng = np.random.default_rng(3)
        train = _make_series(140, 4, seed=15)
        test = _make_series(60, 4, seed=16)
        train_times = np.cumsum(0.8 + 0.4 * rng.random(len(train)))
        test_times = train_times[-1] + np.cumsum(0.8 + 0.4 * rng.random(len(test)))
        detector = AeroDetector(_fast_config())
        detector.fit(train, train_times)
        restored = AeroDetector.load(detector.save(tmp_path / "timed.npz"))
        assert np.array_equal(
            detector.score(test, test_times), restored.score(test, test_times)
        )

    def test_variant_round_trip(self, series, tmp_path):
        train, test = series
        detector = build_variant("static_graph", config=_fast_config())
        detector.fit(train)
        restored = AeroDetector.load(detector.save(tmp_path / "variant.npz"))
        assert restored.graph_mode == "static"
        assert np.array_equal(detector.score(test), restored.score(test))


class TestServeFromDisk:
    def test_compile_from_loaded_checkpoint(self, fitted, series, tmp_path):
        _, test = series
        restored = AeroDetector.load(fitted.save(tmp_path / "detector.npz"))
        assert np.array_equal(
            fitted.score(test), restored.score(test, backend="compiled")
        )

    def test_fleet_serves_from_checkpoint(self, fitted, series, tmp_path):
        _, test = series
        restored = AeroDetector.load(fitted.save(tmp_path / "detector.npz"))
        fleet = FleetManager(restored, num_shards=2, backend="compiled")
        result = fleet.step(np.stack([test[0]] * 2))
        assert result.ready
        assert result.scores.shape == (2, test.shape[1])


class TestErrorPaths:
    def test_save_requires_fitted(self, tmp_path):
        with pytest.raises(RuntimeError, match="fitted"):
            AeroDetector(_fast_config()).save(tmp_path / "nope.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            AeroDetector.load(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="not a readable"):
            AeroDetector.load(path)

    def test_foreign_archive_rejected(self, tmp_path):
        path = save_arrays(tmp_path / "foreign.npz", {"weights": np.zeros(3)})
        with pytest.raises(ValueError, match="no metadata"):
            AeroDetector.load(path)

    def test_incomplete_checkpoint_names_path_and_keys(self, fitted, tmp_path):
        from repro.nn import load_arrays

        path = fitted.save(tmp_path / "detector.npz")
        arrays = load_arrays(path)
        del arrays["pot.train_scores"]
        save_arrays(path, arrays)
        with pytest.raises(ValueError, match="incomplete.*pot.train_scores"):
            AeroDetector.load(path)

    def test_future_version_rejected(self, fitted, tmp_path):
        import json

        from repro.nn import load_arrays

        path = fitted.save(tmp_path / "detector.npz")
        arrays = load_arrays(path)
        meta = json.loads(str(arrays["meta"]))
        meta["version"] = 99
        arrays["meta"] = np.array(json.dumps(meta))
        save_arrays(path, arrays)
        with pytest.raises(ValueError, match="newer checkpoint format"):
            AeroDetector.load(path)

    def test_tampered_calibration_detected(self, fitted, tmp_path):
        from repro.nn import load_arrays

        path = fitted.save(tmp_path / "detector.npz")
        arrays = load_arrays(path)
        arrays["pot.train_scores"] = arrays["pot.train_scores"] * 3.0
        save_arrays(path, arrays)
        with pytest.raises(ValueError, match="threshold mismatch"):
            AeroDetector.load(path)

    def test_missing_parameter_named_in_error(self, fitted, tmp_path):
        from repro.nn import load_arrays

        path = fitted.save(tmp_path / "detector.npz")
        arrays = load_arrays(path)
        dropped = next(key for key in arrays if key.startswith("model."))
        del arrays[dropped]
        save_arrays(path, arrays)
        with pytest.raises(KeyError, match="does not match"):
            AeroDetector.load(path)

    def test_shape_mismatch_named_in_error(self, fitted, tmp_path):
        from repro.nn import load_arrays

        path = fitted.save(tmp_path / "detector.npz")
        arrays = load_arrays(path)
        key = next(key for key in arrays if key.startswith("model."))
        arrays[key] = np.zeros(np.asarray(arrays[key]).size + 1)
        save_arrays(path, arrays)
        with pytest.raises(ValueError, match="does not match"):
            AeroDetector.load(path)
