"""Parity tests for the compiled inference runtime (``repro.runtime``).

The float64 contract is *bit-for-bit* equality with the autograd forward
pass — asserted with ``np.array_equal``, not ``allclose`` — across every
ablation variant, both conditioning modes, all graph modes, the streaming
and fleet serving fronts, and the fused multi-star stack path.
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.core.variants import ABLATION_VARIANTS, build_variant
from repro.nn import Tensor
from repro.runtime import compile_detector
from repro.streaming import AlertPolicy, FleetManager, StreamingDetector

VARIANTS = sorted(ABLATION_VARIANTS)


def _make_series(num_points, num_variates, seed=7):
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, num_variates)
    t = np.arange(num_points)
    base = 0.5 + 0.3 * np.sin(2.0 * np.pi * t[:, None] / 24.0 + phases[None, :])
    return base + 0.05 * rng.standard_normal((num_points, num_variates))


def _fast_config(**overrides):
    settings = dict(
        window=16, short_window=6, d_model=8, num_heads=2,
        train_stride=3, max_epochs_stage1=2, max_epochs_stage2=2, batch_size=8,
    )
    settings.update(overrides)
    return AeroConfig(**settings)


@pytest.fixture(scope="module")
def train_series():
    return _make_series(140, 5, seed=7)


@pytest.fixture(scope="module")
def test_series():
    return _make_series(90, 5, seed=11)


@pytest.fixture(scope="module")
def fitted_variants(train_series):
    detectors = {}
    for name in VARIANTS:
        detector = build_variant(name, config=_fast_config())
        detector.fit(train_series)
        detectors[name] = detector
    return detectors


@pytest.fixture(scope="module")
def detector(fitted_variants):
    return fitted_variants["full"]


class TestFloat64Parity:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_score_bit_equal_across_variants(self, fitted_variants, test_series, variant):
        det = fitted_variants[variant]
        reference = det.score(test_series)
        compiled = compile_detector(det).score(test_series)
        assert compiled.dtype == np.float64
        assert np.array_equal(reference, compiled)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_detect_bit_equal_across_variants(self, fitted_variants, test_series, variant):
        det = fitted_variants[variant]
        assert np.array_equal(
            det.detect(test_series), compile_detector(det).detect(test_series)
        )

    def test_score_with_timestamps(self, train_series, test_series):
        rng = np.random.default_rng(3)
        train_times = np.cumsum(0.8 + 0.4 * rng.random(len(train_series)))
        test_times = train_times[-1] + np.cumsum(0.8 + 0.4 * rng.random(len(test_series)))
        det = AeroDetector(_fast_config())
        det.fit(train_series, train_times)
        reference = det.score(test_series, test_times)
        assert np.array_equal(reference, compile_detector(det).score(test_series, test_times))

    def test_full_conditioning_parity(self, train_series, test_series):
        det = AeroDetector(_fast_config(conditioning="full"))
        det.fit(train_series)
        assert np.array_equal(
            det.score(test_series), compile_detector(det).score(test_series)
        )

    def test_score_windows_parity(self, detector, test_series):
        window, short = detector.config.window, detector.config.short_window
        longs = np.stack([test_series[i:i + window].T for i in range(0, 40, 5)])
        shorts = longs[:, :, window - short:]
        compiled = compile_detector(detector)
        assert np.array_equal(
            detector.score_windows(longs, shorts), compiled.score_windows(longs, shorts)
        )
        times = np.tile(np.arange(window, dtype=np.float64), (len(longs), 1))
        assert np.array_equal(
            detector.score_windows(longs, shorts, times, times[:, window - short:]),
            compiled.score_windows(longs, shorts, times, times[:, window - short:]),
        )

    def test_forward_intermediates_match(self, detector, test_series):
        window, short = detector.config.window, detector.config.short_window
        longs = test_series[:window].T[None]
        shorts = longs[:, :, window - short:]
        reference = detector.model(longs, shorts)
        compiled = compile_detector(detector).forward(longs, shorts)
        assert np.array_equal(reference.reconstruction, compiled.reconstruction)
        assert np.array_equal(reference.errors, compiled.errors)
        assert np.array_equal(reference.noise_reconstruction, compiled.noise_reconstruction)
        assert np.array_equal(reference.residual, compiled.residual)
        assert np.array_equal(reference.scores, compiled.scores)


class TestFloat32Mode:
    def test_scores_close_and_single_precision(self, detector, test_series):
        compiled = compile_detector(detector, dtype="float32")
        assert compiled.dtype == np.dtype(np.float32)
        scores = compiled.score(test_series)
        assert scores.dtype == np.float32
        reference = detector.score(test_series)
        np.testing.assert_allclose(scores, reference, atol=1e-5, rtol=1e-4)

    def test_labels_match_float64(self, detector, test_series):
        # Tolerance-level score wobble must not flip detection labels here.
        compiled = compile_detector(detector, dtype="float32")
        reference = detector.detect(test_series)
        assert (compiled.detect(test_series) != reference).mean() < 0.01

    def test_unsupported_dtype_rejected(self, detector):
        with pytest.raises(ValueError, match="float64 and float32"):
            compile_detector(detector, dtype="int32")

    def test_large_absolute_timestamps_keep_precision(self, train_series, test_series):
        # Intervals must be differenced in float64: unix-epoch-scale
        # timestamps would be quantized to ~128 s by a float32 cast.
        rng = np.random.default_rng(13)
        epoch = 1.7e9
        train_times = epoch + np.cumsum(20.0 + 10.0 * rng.random(len(train_series)))
        test_times = train_times[-1] + np.cumsum(20.0 + 10.0 * rng.random(len(test_series)))
        det = AeroDetector(_fast_config())
        det.fit(train_series, train_times)
        reference = det.score(test_series, test_times)
        scores32 = compile_detector(det, dtype="float32").score(test_series, test_times)
        np.testing.assert_allclose(scores32, reference, atol=1e-4, rtol=1e-3)


class TestFusedStack:
    def test_score_stack_matches_per_window_calls(self, detector, test_series):
        window, short = detector.config.window, detector.config.short_window
        stack = np.stack([test_series[i:i + window] for i in range(6)])
        compiled = compile_detector(detector)
        fused = compiled.score_stack(stack)
        longs = stack.transpose(0, 2, 1)
        shorts = longs[:, :, window - short:]
        loop = np.stack(
            [detector.score_windows(longs[i:i + 1], shorts[i:i + 1])[0] for i in range(len(stack))]
        )
        assert np.array_equal(fused, loop)

    def test_score_stack_shared_timestamps(self, detector, test_series):
        window, short = detector.config.window, detector.config.short_window
        stack = np.stack([test_series[i:i + window] for i in range(4)])
        times = np.cumsum(0.9 + 0.2 * np.random.default_rng(5).random(window))
        compiled = compile_detector(detector)
        fused = compiled.score_stack(stack, times)
        longs = stack.transpose(0, 2, 1)
        tiled = np.tile(times, (len(stack), 1))
        reference = detector.score_windows(
            longs, longs[:, :, window - short:], tiled, tiled[:, window - short:]
        )
        assert np.array_equal(fused, reference)

    def test_score_stack_validation(self, detector, test_series):
        compiled = compile_detector(detector)
        with pytest.raises(ValueError, match="3-D"):
            compiled.score_stack(test_series)
        with pytest.raises(ValueError, match="length"):
            compiled.score_stack(test_series[None, :5, :])


class TestTapeFree:
    def test_compiled_scoring_allocates_no_tensors(self, detector, test_series, monkeypatch):
        compiled = compile_detector(detector)
        counter = {"tensors": 0}
        original = Tensor.__init__

        def counting(self, *args, **kwargs):
            counter["tensors"] += 1
            original(self, *args, **kwargs)

        monkeypatch.setattr(Tensor, "__init__", counting)
        compiled.score(test_series)
        assert counter["tensors"] == 0

    def test_weights_are_frozen_copies(self, detector, test_series):
        compiled = compile_detector(detector)
        plan = compiled.model.temporal
        with pytest.raises(ValueError):
            plan.encoder_embedding_w[...] = 0.0
        # Mutating the live model must not leak into the compiled plan.
        reference = compiled.score(test_series)
        saved = detector.model.temporal.encoder_embedding.weight.data.copy()
        detector.model.temporal.encoder_embedding.weight.data[:] = 0.0
        try:
            assert np.array_equal(compiled.score(test_series), reference)
        finally:
            detector.model.temporal.encoder_embedding.weight.data[:] = saved


class TestDetectorBackendSwitch:
    def test_backend_kwarg_bit_equal(self, detector, test_series):
        assert np.array_equal(
            detector.score(test_series), detector.score(test_series, backend="compiled")
        )
        assert np.array_equal(
            detector.detect(test_series), detector.detect(test_series, backend="compiled")
        )

    def test_default_backend_detector(self, train_series, test_series):
        reference = AeroDetector(_fast_config())
        reference.fit(train_series)
        compiled_default = AeroDetector(_fast_config(), backend="compiled")
        compiled_default.fit(train_series)
        assert np.array_equal(reference.score(test_series), compiled_default.score(test_series))

    def test_invalid_backend_rejected(self, detector, test_series):
        with pytest.raises(ValueError, match="backend"):
            AeroDetector(backend="tensorflow")
        with pytest.raises(ValueError, match="backend"):
            detector.score(test_series, backend="jit")

    def test_compile_requires_fitted(self):
        with pytest.raises(RuntimeError, match="fitted"):
            AeroDetector(_fast_config()).compile()

    def test_compile_is_cached_per_dtype_and_invalidated_by_fit(self, train_series):
        det = AeroDetector(_fast_config())
        det.fit(train_series)
        first = det.compile()
        assert det.compile() is first
        plan32 = det.compile(dtype="float32")
        assert plan32 is not first
        # Both dtypes stay cached side by side.
        assert det.compile() is first
        assert det.compile(dtype="float32") is plan32
        det.fit(train_series)
        assert det.compile() is not first


class TestStreamingOnCompiledBackend:
    def test_stream_scores_bit_equal_to_batch(self, detector, test_series):
        batch_scores = detector.score(test_series)
        stream = detector.stream(backend="compiled")
        assert stream.backend == "compiled"
        assert np.array_equal(stream.score_series(test_series), batch_scores)

    def test_stream_accepts_prebuilt_plan(self, detector, test_series):
        plan = compile_detector(detector, dtype="float32")
        stream = StreamingDetector(detector, backend=plan)
        scores = stream.score_series(test_series)
        np.testing.assert_allclose(scores, detector.score(test_series), atol=1e-5, rtol=1e-4)

    def test_stream_rejects_foreign_backends(self, detector):
        with pytest.raises(TypeError, match="CompiledDetector"):
            StreamingDetector(detector, backend=object())

    def test_dynamic_graph_stream_compiled(self, fitted_variants, test_series):
        det = fitted_variants["dynamic_graph"]
        batch_scores = det.score(test_series)
        stream_scores = det.stream(backend="compiled").score_series(test_series)
        assert np.array_equal(stream_scores, batch_scores)


class TestFleetOnCompiledBackend:
    def test_fleet_bit_equal_to_autograd_fleet(self, detector, test_series):
        num_shards = 3
        rng = np.random.default_rng(9)
        exposures = (
            np.stack([test_series[:30]] * num_shards, axis=1)
            + 0.001 * rng.standard_normal((30, num_shards, test_series.shape[1]))
        )
        autograd = FleetManager(detector, num_shards=num_shards, alert_policy=AlertPolicy())
        compiled = FleetManager(
            detector, num_shards=num_shards, alert_policy=AlertPolicy(), backend="compiled"
        )
        assert compiled.backend == "compiled"
        for result_a, result_c in zip(autograd.run(exposures), compiled.run(exposures)):
            assert np.array_equal(result_a.scores, result_c.scores, equal_nan=True)
            assert np.array_equal(result_a.labels, result_c.labels)

    def test_fleet_from_float32_plan(self, detector, test_series):
        plan = compile_detector(detector, dtype="float32")
        fleet = FleetManager(detector, num_shards=2, backend=plan)
        result = fleet.step(np.stack([test_series[0]] * 2))
        assert result.scores.shape == (2, test_series.shape[1])
        assert result.ready

    def test_fleet_rejects_mismatched_plan(self, detector, train_series):
        other = AeroDetector(_fast_config())
        other.fit(_make_series(140, 3, seed=21))
        with pytest.raises(ValueError, match="variates"):
            FleetManager(detector, num_shards=2, backend=compile_detector(other))
