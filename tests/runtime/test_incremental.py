"""Incremental serving runtime: bit-equality, lifecycle and cache tests.

The incremental engine's contract is exact: in float64 a tick served from
:class:`repro.runtime.IncrementalState` must be bit-for-bit identical to
re-running the full fused forward over the same window — across every
ablation variant, both conditioning modes and all graph modes, including
after invalidation events (rebuilds).  These tests drive state ticks
against per-tick ``score_stack`` references and assert ``array_equal``
(never ``allclose``).
"""

import tracemalloc

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.core.variants import ABLATION_VARIANTS, build_variant
from repro.runtime import compile_detector

NUM_VARIATES = 5
WINDOW = 16
SHORT = 6
NUM_STACKS = 3
TICKS = 18


def _make_series(num_points: int, num_variates: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, num_variates)
    t = np.arange(num_points)
    base = 0.5 + 0.3 * np.sin(2.0 * np.pi * t[:, None] / 24.0 + phases[None, :])
    return base + 0.05 * rng.standard_normal((num_points, num_variates))


def _fast_config(**overrides) -> AeroConfig:
    settings = dict(
        window=WINDOW,
        short_window=SHORT,
        d_model=8,
        num_heads=2,
        train_stride=3,
        max_epochs_stage1=2,
        max_epochs_stage2=2,
        batch_size=8,
    )
    settings.update(overrides)
    return AeroConfig(**settings)


@pytest.fixture(scope="module")
def train_series() -> np.ndarray:
    return _make_series(140, NUM_VARIATES, seed=7)


@pytest.fixture(scope="module")
def test_series() -> np.ndarray:
    return _make_series(90, NUM_VARIATES, seed=11)


@pytest.fixture(scope="module")
def timestamps() -> np.ndarray:
    rng = np.random.default_rng(3)
    return np.cumsum(0.8 + 0.4 * rng.random(200))


@pytest.fixture(scope="module")
def fitted_variants(train_series) -> dict:
    variants = {}
    for name in sorted(ABLATION_VARIANTS):
        detector = build_variant(name, config=_fast_config())
        detector.fit(train_series)
        variants[name] = detector
    return variants


def _drive(compiled, reference, scaled, times, num_ticks=TICKS):
    """Rebuild once, then tick the state against per-tick fused references.

    ``compiled`` owns the incremental state; ``reference`` scores the same
    sliding windows through the full ``score_stack`` path.  Separate engine
    objects keep dynamic-graph adjacency state independent.  Returns the
    state and the list of ``(incremental, reference)`` score pairs.
    """
    state = compiled.new_incremental_state(NUM_STACKS)
    stacks = np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)])
    state.rebuild(stacks, None if times is None else times[:WINDOW])
    pairs = [
        (state.score(), reference.score_stack(stacks, None if times is None else times[:WINDOW]))
    ]
    for k in range(num_ticks):
        rows = np.stack([scaled[WINDOW + k + i] for i in range(NUM_STACKS)])
        tick_time = None if times is None else float(times[WINDOW + k])
        incremental = compiled.score_stack_step(state, rows, tick_time)
        slid = np.stack([scaled[i + k + 1 : i + k + 1 + WINDOW] for i in range(NUM_STACKS)])
        window_times = None if times is None else times[k + 1 : k + 1 + WINDOW]
        pairs.append((incremental, reference.score_stack(slid, window_times)))
    return state, pairs


def _assert_pairs_equal(pairs) -> None:
    for tick, (incremental, reference) in enumerate(pairs):
        assert np.array_equal(reference, incremental), (
            f"tick {tick}: max diff {np.abs(reference - incremental).max()}"
        )


class TestIncrementalBitEquality:
    @pytest.mark.parametrize("name", sorted(ABLATION_VARIANTS))
    def test_matches_fused_stack_real_times(
        self, name, fitted_variants, test_series, timestamps
    ):
        detector = fitted_variants[name]
        compiled = compile_detector(detector)
        reference = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        state, pairs = _drive(compiled, reference, scaled, timestamps)
        _assert_pairs_equal(pairs)
        if name == "no_short_window":
            # Long-window targets share no cacheable prefix work; every tick
            # is served (still bit-equal) through the full-forward fallback.
            assert not state.supported
            assert state.fallbacks == len(pairs)
            assert state.incremental_ticks == 0
        else:
            assert state.supported
            assert state.incremental_ticks == len(pairs)
            assert state.fallbacks == 0
        assert state.rebuilds == 1

    @pytest.mark.parametrize("name", ["full", "no_univariate_input"])
    def test_matches_fused_stack_default_cadence(
        self, name, fitted_variants, test_series
    ):
        detector = fitted_variants[name]
        compiled = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        _, pairs = _drive(compiled, compiled, scaled, times=None)
        _assert_pairs_equal(pairs)

    def test_full_conditioning_mode(self, train_series, test_series, timestamps):
        detector = AeroDetector(_fast_config(conditioning="full"))
        detector.fit(train_series)
        compiled = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        _, pairs = _drive(compiled, compiled, scaled, timestamps)
        _assert_pairs_equal(pairs)

    def test_gcn_serving_profile(self, train_series, test_series, timestamps):
        # The temporal-free static-graph profile is the throughput headline
        # of the incremental runtime (see benchmarks/test_runtime_speedup).
        detector = AeroDetector(_fast_config(), use_temporal=False, graph_mode="static")
        detector.fit(train_series)
        compiled = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        state, pairs = _drive(compiled, compiled, scaled, timestamps)
        _assert_pairs_equal(pairs)
        assert state.incremental_ticks == len(pairs)

    def test_rebuild_after_invalidation_recovers_equality(
        self, fitted_variants, test_series, timestamps
    ):
        detector = fitted_variants["full"]
        compiled = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        state = compiled.new_incremental_state(NUM_STACKS)
        stacks = np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)])
        state.rebuild(stacks, timestamps[:WINDOW])
        for k in range(4):
            rows = np.stack([scaled[WINDOW + k + i] for i in range(NUM_STACKS)])
            compiled.score_stack_step(state, rows, float(timestamps[WINDOW + k]))
        state.invalidate("out-of-order frame")
        # ...history is untrusted now; a front rebuilds from its ring buffers.
        slid = np.stack([scaled[i + 5 : i + 5 + WINDOW] for i in range(NUM_STACKS)])
        state.rebuild(slid, timestamps[5 : 5 + WINDOW])
        recovered = state.score()
        reference = compiled.score_stack(slid, timestamps[5 : 5 + WINDOW])
        assert np.array_equal(reference, recovered)
        assert state.invalidations == 1
        assert state.rebuilds == 2


class TestStateLifecycle:
    def test_score_before_rebuild_raises(self, fitted_variants):
        compiled = compile_detector(fitted_variants["full"])
        state = compiled.new_incremental_state(NUM_STACKS)
        assert not state.valid
        with pytest.raises(RuntimeError, match="rebuilt"):
            state.score()

    def test_invalidate_blocks_scoring(self, fitted_variants, test_series, timestamps):
        compiled = compile_detector(fitted_variants["full"])
        scaled = compiled.scaler.transform(test_series)
        state = compiled.new_incremental_state(NUM_STACKS)
        stacks = np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)])
        state.rebuild(stacks, timestamps[:WINDOW])
        state.score()
        state.invalidate("model swapped")
        with pytest.raises(RuntimeError, match="model swapped"):
            state.score()

    def test_times_mode_is_locked_between_rebuilds(
        self, fitted_variants, test_series, timestamps
    ):
        compiled = compile_detector(fitted_variants["full"])
        scaled = compiled.scaler.transform(test_series)
        state = compiled.new_incremental_state(NUM_STACKS)
        stacks = np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)])
        state.rebuild(stacks, timestamps[:WINDOW])
        rows = np.stack([scaled[WINDOW + i] for i in range(NUM_STACKS)])
        with pytest.raises(ValueError, match="rebuild"):
            state.append(rows, timestamp=None)
        # A rebuild resets the mode: the same state can switch cadences.
        state.rebuild(stacks, None)
        state.append(rows, timestamp=None)

    def test_stack_shape_is_validated(self, fitted_variants, test_series):
        compiled = compile_detector(fitted_variants["full"])
        scaled = compiled.scaler.transform(test_series)
        state = compiled.new_incremental_state(NUM_STACKS)
        with pytest.raises(ValueError, match="stack must have shape"):
            state.rebuild(scaled[None, :WINDOW])  # one stack, state wants 3
        state.rebuild(np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)]))
        with pytest.raises(ValueError, match="rows must have shape"):
            state.append(scaled[0])

    def test_layout_is_validated(self, fitted_variants):
        compiled = compile_detector(fitted_variants["full"])
        with pytest.raises(ValueError, match="layout"):
            compiled.new_incremental_state(NUM_STACKS, layout="diagonal")


class TestTimeEmbeddingMemo:
    def test_hot_key_survives_cache_overflow(self, fitted_variants):
        """Oldest-inserted eviction: overflow must not dump the hot entry.

        The memo previously cleared the whole cache on overflow, so one
        burst of irregular batch embeddings evicted the steady serving
        cadence along with everything else.
        """
        te = compile_detector(fitted_variants["full"]).model.temporal.time_embedding
        te._cache.clear()
        te._cache_bytes = 0
        rng = np.random.default_rng(17)
        base = np.cumsum(0.8 + 0.4 * rng.random((1, SHORT)), axis=1)
        # Distinct *cadences* (the memo keys on intervals, which are
        # shift-invariant — a translated timeline is the same key).
        for i in range(te.MAX_CACHE):
            te.embed(base * (2.0 + i))
        assert len(te._cache) == te.MAX_CACHE
        _, hot_token = te.embed(base)  # evicts exactly one oldest filler
        assert hot_token is not None
        # A further near-full churn of fresh keys must spare the hot entry.
        for i in range(te.MAX_CACHE - 1):
            te.embed(base * (1000.0 + i))
        _, token_again = te.embed(base)
        assert token_again == hot_token, "hot embedding was evicted by unrelated churn"
        assert len(te._cache) <= te.MAX_CACHE

    def test_equal_content_shares_one_token(self, fitted_variants):
        te = compile_detector(fitted_variants["full"]).model.temporal.time_embedding
        times = np.cumsum(np.full((2, SHORT), 0.5), axis=1)
        embedding_a, token_a = te.embed(times, position_offset=3)
        embedding_b, token_b = te.embed(np.array(times), position_offset=3)
        assert token_a == token_b
        assert embedding_b is embedding_a
        _, token_c = te.embed(times, position_offset=4)
        assert token_c != token_a


class TestDecoderSelfStageCache:
    def test_token_keying_survives_array_identity_reuse(self, fitted_variants):
        """Regression: the stage memo must key on embedding tokens, not id().

        ``id()`` keys forced the memo to pin embeddings alive (or miss
        permanently once an equal-content array arrived at a new address).
        Tokens are content-derived and monotonic: a fresh array with equal
        content hits, different content can never alias.
        """
        plan = compile_detector(fitted_variants["full"]).model.temporal
        te = plan.time_embedding
        offset = WINDOW - SHORT
        times_a = np.cumsum(np.full((NUM_STACKS, SHORT), 0.75), axis=1)
        embedding_a, token_a = te.embed(times_a, position_offset=offset)
        stage_a = plan._decoder_self_stage(embedding_a, token_a)
        # A distinct-but-equal array object (fresh id) still hits the memo.
        embedding_again, token_again = te.embed(np.array(times_a), position_offset=offset)
        assert embedding_again is embedding_a
        assert plan._decoder_self_stage(embedding_again, token_again) is stage_a
        # Different content gets a new token and a genuinely new stage.
        times_b = np.cumsum(np.full((NUM_STACKS, SHORT), 1.25), axis=1)
        embedding_b, token_b = te.embed(times_b, position_offset=offset)
        assert token_b != token_a
        stage_b = plan._decoder_self_stage(embedding_b, token_b)
        assert stage_b is not stage_a
        assert not np.array_equal(np.asarray(stage_b), np.asarray(stage_a))
        # An uncacheable embedding (token None) bypasses the memo but
        # computes the identical stage.
        stage_fresh = plan._decoder_self_stage(embedding_a, None)
        assert stage_fresh is not stage_a
        assert np.array_equal(np.asarray(stage_fresh), np.asarray(stage_a))

    def test_cache_is_bounded(self, fitted_variants):
        plan = compile_detector(fitted_variants["full"]).model.temporal
        te = plan.time_embedding
        offset = WINDOW - SHORT
        for i in range(te.MAX_CACHE + 8):
            times = np.cumsum(np.full((1, SHORT), 0.5 + 0.01 * i), axis=1)
            embedding, token = te.embed(times, position_offset=offset)
            plan._decoder_self_stage(embedding, token)
        assert len(plan._self_stage_cache) <= te.MAX_CACHE


class TestSteadyStateAllocations:
    def test_incremental_tick_is_allocation_flat(self, train_series, test_series):
        """Steady-state ticks must not grow the heap (ring-arena pin).

        Mirrors the tracemalloc pin of the obs null path: after warm-up,
        every buffer lives in the state's preallocated rings/arena and the
        only per-tick allocation is the emitted score vector, which the
        caller drops.  Net heap growth over hundreds of ticks stays flat.
        """
        detector = AeroDetector(_fast_config(), use_temporal=False, graph_mode="static")
        detector.fit(train_series)
        compiled = compile_detector(detector)
        scaled = compiled.scaler.transform(test_series)
        state = compiled.new_incremental_state(NUM_STACKS)
        stacks = np.stack([scaled[i : i + WINDOW] for i in range(NUM_STACKS)])
        state.rebuild(stacks)
        rows = np.ascontiguousarray(
            np.stack([scaled[WINDOW : WINDOW + 40]] * NUM_STACKS, axis=1)
        )

        def tick_loop(iterations: int) -> None:
            for i in range(iterations):
                compiled.score_stack_step(state, rows[i % 40])

        tick_loop(50)  # warm the arena, caches and any lazy imports
        tracemalloc.start()
        try:
            tick_loop(10)
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            tick_loop(400)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The emitted (num_stacks, N) score vectors are freed every
        # iteration; allow only incidental interpreter noise.
        assert after - before < 4096, f"steady-state ticks leaked {after - before} bytes"
