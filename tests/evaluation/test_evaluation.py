"""Unit tests for metrics, point-adjust, POT/SPOT and the evaluation protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    DSPOT,
    SPOT,
    adjust_predictions,
    anomaly_segments,
    best_f1_evaluation,
    confusion_counts,
    evaluate_scores,
    fit_gpd,
    pot_threshold,
    precision_recall_f1,
    threshold_scores,
)


class TestMetrics:
    def test_perfect_prediction(self):
        labels = np.array([0, 1, 1, 0])
        result = precision_recall_f1(labels, labels)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_all_wrong(self):
        result = precision_recall_f1(np.array([1, 0]), np.array([0, 1]))
        assert result.f1 == 0.0

    def test_known_counts(self):
        predictions = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        counts = confusion_counts(predictions, labels)
        assert counts.true_positives == 2
        assert counts.false_positives == 1
        assert counts.false_negatives == 1
        assert counts.true_negatives == 1
        assert counts.precision == pytest.approx(2 / 3)
        assert counts.recall == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        counts = confusion_counts(np.zeros(5), np.array([1, 0, 0, 0, 1]))
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.zeros(3), np.zeros(4))

    def test_percentages(self):
        result = precision_recall_f1(np.array([1, 0]), np.array([1, 0]))
        assert result.as_percentages()["f1"] == 100.0

    def test_2d_inputs(self):
        predictions = np.zeros((4, 2))
        labels = np.zeros((4, 2))
        predictions[0, 0] = labels[0, 0] = 1
        assert precision_recall_f1(predictions, labels).f1 == 1.0


class TestPointAdjust:
    def test_segments_detection(self):
        assert anomaly_segments(np.array([0, 1, 1, 0, 1])) == [(1, 3), (4, 5)]
        assert anomaly_segments(np.zeros(4)) == []
        assert anomaly_segments(np.ones(3)) == [(0, 3)]

    def test_adjustment_expands_partial_hits(self):
        labels = np.array([0, 1, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0])
        adjusted = adjust_predictions(predictions, labels)
        np.testing.assert_array_equal(adjusted, [0, 1, 1, 1, 0])

    def test_adjustment_keeps_missed_segments(self):
        labels = np.array([0, 1, 1, 0, 1, 1])
        predictions = np.array([0, 0, 0, 0, 1, 0])
        adjusted = adjust_predictions(predictions, labels)
        np.testing.assert_array_equal(adjusted, [0, 0, 0, 0, 1, 1])

    def test_adjustment_preserves_false_positives(self):
        labels = np.zeros(5)
        predictions = np.array([0, 1, 0, 0, 0])
        np.testing.assert_array_equal(adjust_predictions(predictions, labels), predictions.astype(bool))

    def test_adjustment_per_variate(self):
        labels = np.zeros((5, 2), dtype=int)
        labels[1:4, 0] = 1
        predictions = np.zeros((5, 2), dtype=int)
        predictions[2, 0] = 1
        predictions[2, 1] = 1
        adjusted = adjust_predictions(predictions, labels)
        assert adjusted[:, 0].sum() == 3
        assert adjusted[:, 1].sum() == 1

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            adjust_predictions(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            adjust_predictions(np.zeros((2, 2, 2)), np.zeros((2, 2, 2)))


class TestGPDAndPOT:
    def test_fit_gpd_exponential_data(self):
        rng = np.random.default_rng(0)
        fit = fit_gpd(rng.exponential(2.0, size=2000))
        assert abs(fit.shape) < 0.5
        assert 1.0 < fit.scale < 4.0

    def test_fit_gpd_requires_positive_excesses(self):
        with pytest.raises(ValueError):
            fit_gpd(np.array([-1.0, 0.0]))

    def test_fit_gpd_degenerate(self):
        fit = fit_gpd(np.array([1.0, 1.0]))
        assert fit.shape == 0.0

    def test_pot_threshold_above_initial_quantile(self):
        rng = np.random.default_rng(1)
        scores = rng.exponential(1.0, size=5000)
        threshold = pot_threshold(scores, level=0.98, q=1e-3)
        assert threshold >= np.quantile(scores, 0.98)

    def test_pot_threshold_detects_extremes(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(0, 1, size=5000)
        threshold = pot_threshold(np.abs(scores), level=0.99, q=1e-3)
        assert threshold > 2.5
        assert threshold < 10.0

    def test_pot_threshold_validation(self):
        with pytest.raises(ValueError):
            pot_threshold(np.array([]))
        with pytest.raises(ValueError):
            pot_threshold(np.ones(10), level=1.5)
        with pytest.raises(ValueError):
            pot_threshold(np.ones(10), q=0.0)

    def test_pot_threshold_small_sample_fallback(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.isfinite(pot_threshold(scores))

    def test_spot_streaming(self):
        rng = np.random.default_rng(3)
        spot = SPOT(q=1e-3, level=0.98).fit(rng.normal(0, 1, size=2000))
        alarms = spot.detect(np.array([0.1, 0.2, 8.0, 0.3]))
        assert alarms[2] == 1
        assert alarms[[0, 1, 3]].sum() == 0

    def test_spot_requires_fit(self):
        with pytest.raises(RuntimeError):
            SPOT().step(1.0)
        with pytest.raises(ValueError):
            SPOT().fit(np.ones(3))

    def test_dspot_handles_drift(self):
        rng = np.random.default_rng(4)
        calibration = rng.normal(0, 1, size=2000)
        dspot = DSPOT(q=1e-3, level=0.98, depth=10).fit(calibration)
        # A slow drift should not trigger alarms, but a spike on top should.
        drift = np.linspace(0, 0.5, 50) + rng.normal(0, 0.5, size=50)
        alarms = dspot.detect(drift)
        assert alarms.sum() <= 2
        assert dspot.step(drift[-1] + 20.0)


class TestEvaluationProtocol:
    def _scores_with_anomaly(self):
        rng = np.random.default_rng(5)
        train = np.abs(rng.normal(0, 1, size=(800, 3)))
        test = np.abs(rng.normal(0, 1, size=(400, 3)))
        labels = np.zeros((400, 3), dtype=int)
        labels[100:110, 1] = 1
        test[100:110, 1] += 15.0
        return train, test, labels

    def test_evaluate_scores_finds_planted_anomaly(self):
        train, test, labels = self._scores_with_anomaly()
        outcome = evaluate_scores(train, test, labels)
        assert outcome.result.recall == 1.0
        assert outcome.result.precision > 0.5
        assert outcome.adjusted_predictions.shape == labels.shape

    def test_point_adjust_improves_or_preserves_recall(self):
        train, test, labels = self._scores_with_anomaly()
        adjusted = evaluate_scores(train, test, labels, point_adjust=True).result
        raw = evaluate_scores(train, test, labels, point_adjust=False).result
        assert adjusted.recall >= raw.recall

    def test_per_variate_thresholds(self):
        train, test, labels = self._scores_with_anomaly()
        predictions, thresholds = threshold_scores(train, test, per_variate=True)
        assert predictions.shape == test.shape
        assert len(thresholds) == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_scores(np.ones(10), np.ones(10), np.zeros(5))

    def test_best_f1_evaluation(self):
        train, test, labels = self._scores_with_anomaly()
        result, threshold = best_f1_evaluation(test, labels)
        assert result.f1 > 0.9
        assert np.isfinite(threshold)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=5, max_size=60))
def test_point_adjust_properties(labels_list):
    """Point adjustment never removes predictions and fully covers hit segments."""
    labels = np.array(labels_list)
    rng = np.random.default_rng(0)
    predictions = (rng.random(len(labels)) < 0.3).astype(int)
    adjusted = adjust_predictions(predictions, labels)
    # Monotone: every original positive prediction survives.
    assert (adjusted.astype(int) >= predictions).all()
    # Each ground-truth segment is either fully covered or untouched.
    for start, end in anomaly_segments(labels):
        segment = adjusted[start:end]
        assert segment.all() or not segment.any()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pot_threshold_monotone_in_q(seed):
    """Smaller target probability q can only raise the POT threshold."""
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.normal(size=3000))
    loose = pot_threshold(scores, level=0.98, q=1e-2)
    strict = pot_threshold(scores, level=0.98, q=1e-4)
    assert strict >= loose - 1e-9
