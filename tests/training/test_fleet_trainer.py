"""Tests for FleetTrainer: worker-count determinism, failure isolation,
per-star seeding, progress reporting and registry integration."""

import logging

import numpy as np
import pytest

from repro.core import AeroDetector
from repro.nn.serialization import load_arrays
from repro.training import FleetTrainer, ModelRegistry, StarTask


def make_tasks(num_stars, length=150, num_variates=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        StarTask(star_id=f"star-{i:02d}", series=rng.normal(10.0, 1.0, size=(length, num_variates)))
        for i in range(num_stars)
    ]


def star_weights(report, star_id):
    result = report.result(star_id)
    assert result.ok, result.error
    return {
        name: value
        for name, value in load_arrays(result.checkpoint_path).items()
        if name.startswith("model.")
    }


class TestDeterminism:
    def test_results_independent_of_worker_count_and_executor(self, tiny_config, tmp_path):
        tasks = make_tasks(3)
        serial = FleetTrainer(tiny_config, tmp_path / "serial", executor="serial").train(tasks)
        threaded = FleetTrainer(
            tiny_config, tmp_path / "threads", workers=3, executor="thread"
        ).train(tasks)
        assert not serial.failed and not threaded.failed
        for task in tasks:
            weights_a = star_weights(serial, task.star_id)
            weights_b = star_weights(threaded, task.star_id)
            assert set(weights_a) == set(weights_b)
            for name in weights_a:
                np.testing.assert_array_equal(weights_a[name], weights_b[name], err_msg=name)

    def test_process_pool_matches_serial(self, tiny_config, tmp_path):
        tasks = make_tasks(2, length=120)
        serial = FleetTrainer(tiny_config, tmp_path / "serial", executor="serial").train(tasks)
        procs = FleetTrainer(
            tiny_config, tmp_path / "procs", workers=2, executor="process"
        ).train(tasks)
        assert not procs.failed
        for task in tasks:
            weights_a = star_weights(serial, task.star_id)
            weights_b = star_weights(procs, task.star_id)
            for name in weights_a:
                np.testing.assert_array_equal(weights_a[name], weights_b[name], err_msg=name)

    def test_per_star_seeds_differ_and_are_reported(self, tiny_config, tmp_path):
        tasks = make_tasks(2)
        report = FleetTrainer(
            tiny_config, tmp_path / "fleet", executor="serial", base_seed=100
        ).train(tasks)
        assert [r.seed for r in report.results] == [100, 101]
        # Same data, different seeds: the trained weights must differ.
        weights_a = star_weights(report, "star-00")
        weights_b = star_weights(report, "star-01")
        assert any(not np.array_equal(weights_a[n], weights_b[n]) for n in weights_a)

    def test_explicit_task_seed_wins(self, tiny_config, tmp_path):
        tasks = make_tasks(1)
        tasks[0].seed = 777
        report = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial").train(tasks)
        assert report.results[0].seed == 777


class TestFailureIsolation:
    def test_one_bad_star_does_not_sink_the_fleet(self, tiny_config, tmp_path, caplog):
        tasks = make_tasks(2)
        # A malformed (1-D) series: fit() raises inside the worker.
        tasks.insert(1, StarTask(star_id="broken", series=np.zeros(40)))
        with caplog.at_level(logging.WARNING, logger="repro.training"):
            report = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial").train(tasks)
        assert len(report.trained) == 2
        assert [r.star_id for r in report.failed] == ["broken"]
        failed = report.result("broken")
        assert failed.checkpoint_path is None and failed.error
        assert any("broken" in r.getMessage() for r in caplog.records)
        assert "1 failed" in report.summary()

    def test_duplicate_and_empty_ids_rejected(self, tiny_config, tmp_path):
        trainer = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial")
        tasks = make_tasks(2)
        tasks[1].star_id = tasks[0].star_id
        with pytest.raises(ValueError, match="duplicate"):
            trainer.train(tasks)
        with pytest.raises(ValueError, match="no tasks"):
            trainer.train([])

    def test_invalid_pool_configuration_rejected(self, tiny_config, tmp_path):
        with pytest.raises(ValueError):
            FleetTrainer(tiny_config, tmp_path, workers=0)
        with pytest.raises(ValueError):
            FleetTrainer(tiny_config, tmp_path, executor="gpu")


class TestReporting:
    def test_progress_callback_sees_every_star(self, tiny_config, tmp_path):
        tasks = make_tasks(3, length=120)
        seen = []
        report = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial").train(
            tasks, progress=lambda result, done, total: seen.append((result.star_id, done, total))
        )
        assert [s[1] for s in seen] == [1, 2, 3]
        assert all(s[2] == 3 for s in seen)
        assert {s[0] for s in seen} == {t.star_id for t in tasks}
        assert report.wall_seconds > 0
        assert report.result("star-00").history is not None

    def test_mapping_input_is_accepted(self, tiny_config, tmp_path):
        rng = np.random.default_rng(5)
        series = {"a": rng.normal(10, 1, (120, 3)), "b": rng.normal(10, 1, (120, 3))}
        report = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial").train(series)
        assert {r.star_id for r in report.trained} == {"a", "b"}

    def test_unknown_star_lookup_raises(self, tiny_config, tmp_path):
        report = FleetTrainer(tiny_config, tmp_path / "fleet", executor="serial").train(
            make_tasks(1, length=120)
        )
        with pytest.raises(KeyError):
            report.result("nope")


class TestRegistryIntegration:
    def test_trained_stars_are_published(self, tiny_config, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        tasks = make_tasks(2, length=120)
        FleetTrainer(
            tiny_config, tmp_path / "fleet", executor="serial", registry=registry
        ).train(tasks)
        assert registry.names() == ["star-00", "star-01"]
        version = registry.latest("star-00")
        assert version.version == 1
        assert version.metadata["source"] == "FleetTrainer"
        detector = registry.load_detector("star-00")
        assert isinstance(detector, AeroDetector)
        assert detector.train_scores_ is not None

    def test_warm_start_refresh_through_fleet(self, tiny_config, tmp_path):
        """The drifted-star path: retrain a star warm-started from its last
        published artifact, in one epoch."""
        tasks = make_tasks(1)
        first = FleetTrainer(tiny_config, tmp_path / "gen1", executor="serial").train(tasks)
        refresh_config = tiny_config.scaled(max_epochs_stage1=1, max_epochs_stage2=1)
        drifted = tasks[0].series + 0.05
        refreshed = FleetTrainer(refresh_config, tmp_path / "gen2", executor="serial").train(
            [
                StarTask(
                    star_id="star-00",
                    series=drifted,
                    warm_start=first.result("star-00").checkpoint_path,
                )
            ]
        )
        result = refreshed.result("star-00")
        assert result.ok, result.error
        assert result.history.stage1_epochs == 1
