"""Closed continual-learning loop: trigger → retrain → canary → promote → watch.

The load-bearing acceptance pair mirrors ``tests/obs/test_drift.py``'s
drift night (test directories are not packages, so the scenario constants
are duplicated here): a drift-faulted survey night served through a
:class:`~repro.training.ContinualLearningController` must trip, retrain,
clear the canary, promote and survive its watch window — while the
*matching* quiet night (same seed, bit-identical train/calibration data,
same detector and monitor) never triggers at all.  Both runs are
bit-reproducible under the loop seed, and a deliberately blinded candidate
is rejected with the live model untouched.
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import SLOMonitor, calibrate_drift_monitor
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager
from repro.training import (
    CanaryBudget,
    CanaryReport,
    ContinualLearningController,
    GateResult,
    ModelRegistry,
    ShadowTraffic,
    inject_probes,
    score_psi,
)

LOOP_SEED = 23
MODEL_NAME = "gwac-field"

#: Same night family as tests/obs/test_drift.py (longer, so the full
#: trigger → reject → retrigger → promote → watch-clear arc fits): the
#: drifted variant trips the serving monitor around tick ~116, the quiet
#: one never does, and both share bit-identical train and calibration
#: stretches.
LOOP_BASE = dict(
    seed=11, train_length=240, calibration_length=160, night_length=280,
    num_events=0, num_dropouts=0, nan_fraction=0.0,
    num_duplicate_frames=0, num_reordered_frames=0,
)

LOOP_MONITOR = dict(
    halflife=48, check_interval=4, min_observations=64, warmup_ticks=48,
    psi_trip=1.0, psi_clear=0.30, ks_trip=0.60, ks_clear=0.20,
    trip_after=2, clear_after=8,
)

LOOP_DETECTOR = AeroConfig.fast(window=24, short_window=8).scaled(
    max_epochs_stage1=2, max_epochs_stage2=1, learning_rate=5e-3,
    d_model=16, num_heads=2, train_stride=3, batch_size=16,
)

#: With the drift trip landing around tick ~116, the ring holds the whole
#: night so far (>= 80 ticks of history) and the retrain holds back the
#: trailing 48 ticks for calibration.  Cycle 1's candidate (68 train
#: ticks) is genuinely under-trained — its recalibrated threshold is less
#: sensitive than live and the canary's recall gate rejects it; after the
#: cooldown, cycle 2 (112 train ticks) passes, promotes around tick ~163
#: and its 48-tick watch window clears inside the 280-tick night.
LOOP_KWARGS = dict(
    history_ticks=160, min_history_ticks=80, calibration_ticks=48,
    cooldown_ticks=48, watch_ticks=48, pot_q=5e-3, seed=LOOP_SEED,
)


@pytest.fixture(scope="module")
def loop_night():
    """Quiet and drift-faulted variants of one night, plus a shared detector."""
    quiet = build_scenario(ScenarioConfig(num_drift_stars=0, **LOOP_BASE))
    drifted = build_scenario(
        ScenarioConfig(num_drift_stars=2, drift_amplitude=1.0, **LOOP_BASE)
    )
    assert np.array_equal(quiet.train, drifted.train)
    assert np.array_equal(quiet.calibration, drifted.calibration)
    detector = AeroDetector(LOOP_DETECTOR)
    detector.fit(quiet.train, quiet.train_timestamps)
    cal_scores = detector.score(quiet.calibration, quiet.calibration_timestamps)
    threshold = float(pot_threshold(cal_scores, q=5e-3))
    return quiet, drifted, detector, cal_scores, threshold


def _build_controller(scenario, detector, cal_scores, threshold, root, *, slo=None, **overrides):
    """A monitored fleet plus a controller over a fresh registry/workdir."""
    monitor = calibrate_drift_monitor(
        cal_scores, num_stars=scenario.num_stars, **LOOP_MONITOR
    )
    fleet = FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
        drift_monitor=monitor,
    )
    registry = ModelRegistry(root / "registry")
    kwargs = dict(LOOP_KWARGS)
    kwargs.update(overrides)
    controller = ContinualLearningController(
        fleet, registry, MODEL_NAME, root / "work", slo=slo, **kwargs
    )
    return controller, fleet, registry


@pytest.fixture(scope="module")
def drifted_run(loop_night, tmp_path_factory):
    """One full closed-loop pass over the drifted night (shared: read-only)."""
    _, drifted, detector, cal_scores, threshold = loop_night
    root = tmp_path_factory.mktemp("drifted-loop")
    controller, fleet, registry = _build_controller(
        drifted, detector, cal_scores, threshold, root
    )
    _, trace = ReplayHarness(controller, drifted).run()
    return controller, fleet, registry, trace


# ---------------------------------------------------------------------------
# acceptance: the loop closes
# ---------------------------------------------------------------------------
class TestClosedLoopAcceptance:
    def test_drifted_night_promotes_and_watch_clears(self, drifted_run):
        controller, fleet, registry, _ = drifted_run
        counts = controller.decision_counts()
        assert counts.get("baseline") == 1
        assert counts.get("trigger") == 2
        assert counts.get("retrain") == 2
        assert counts.get("canary_fail") == 1
        assert counts.get("canary_pass") == 1
        assert counts.get("promote") == 1
        assert counts.get("watch_clear") == 1
        assert counts.get("rollback", 0) == 0
        assert counts.get("retrain_failed", 0) == 0

        # Cycle 1 retrained on ~68 ticks of night: a genuinely
        # under-trained candidate whose recalibrated threshold is *less*
        # sensitive than live.  The canary's recall gate — not luck —
        # rejected it, and the live model kept serving.
        fail = next(e for e in controller.events if e.kind == "canary_fail")
        assert fail.detail["failed_gates"] == ["recall"]

        # The decisions happened in loop order: trigger → retrain →
        # reject, cooldown, trigger → retrain → pass → promote → clear.
        kinds = [event.kind for event in controller.events]
        assert kinds[0] == "baseline"
        assert kinds[1:] == [
            "trigger", "retrain", "canary_fail",
            "trigger", "retrain", "canary_pass", "promote", "watch_clear",
        ]

        # Both triggers fired on real drift, with enough history recorded.
        for trigger in (e for e in controller.events if e.kind == "trigger"):
            assert trigger.detail["action"] == "retrain"
            assert trigger.detail["tripped_stars"] >= 1

        # The promotion is live: new registry version serving in the fleet,
        # with its re-fitted threshold carried across the swap.
        assert registry.versions(MODEL_NAME) == [1, 2]
        assert controller.live_version == 2
        assert fleet.model_version == f"{MODEL_NAME}@v0002"
        promote = next(e for e in controller.events if e.kind == "promote")
        assert promote.detail["previous_version"] == 1
        assert float(fleet.threshold) == promote.detail["threshold"]
        meta = registry.get(MODEL_NAME, 2).metadata
        assert meta["source"] == "continual-loop"
        assert meta["parent_version"] == 1
        assert float(meta["threshold"]) == promote.detail["threshold"]
        assert registry.get(MODEL_NAME, 2).has_drift_reference

        # The fresh drift reference cleared the fleet's drift state: the
        # watch window ended with the promoted model, not a rollback.
        assert not controller.watching
        assert fleet.drift_monitor.tripped_stars == 0
        watch_clear = next(e for e in controller.events if e.kind == "watch_clear")
        assert watch_clear.step <= LOOP_BASE["night_length"]
        assert watch_clear.step - promote.step >= LOOP_KWARGS["watch_ticks"]

    def test_quiet_night_never_triggers(self, loop_night, tmp_path):
        quiet, _, detector, cal_scores, threshold = loop_night
        controller, fleet, registry = _build_controller(
            quiet, detector, cal_scores, threshold, tmp_path
        )
        ReplayHarness(controller, quiet).run()
        assert [event.kind for event in controller.events] == ["baseline"]
        assert controller.cycles == 0
        assert registry.versions(MODEL_NAME) == [1]
        assert fleet.model_version == f"{MODEL_NAME}@v0001"
        assert float(fleet.threshold) == threshold
        assert fleet.drift_monitor.trips_total == 0

    def test_loop_is_bit_reproducible(self, loop_night, drifted_run, tmp_path):
        _, drifted, detector, cal_scores, threshold = loop_night
        controller_a, fleet_a, _, trace_a = drifted_run
        controller_b, fleet_b, _ = _build_controller(
            drifted, detector, cal_scores, threshold, tmp_path
        )
        _, trace_b = ReplayHarness(controller_b, drifted).run()

        assert [(e.step, e.kind) for e in controller_a.events] == [
            (e.step, e.kind) for e in controller_b.events
        ]
        promote_a = next(e for e in controller_a.events if e.kind == "promote")
        promote_b = next(e for e in controller_b.events if e.kind == "promote")
        assert promote_a.detail["threshold"] == promote_b.detail["threshold"]
        assert float(fleet_a.threshold) == float(fleet_b.threshold)
        assert np.array_equal(trace_a.scores, trace_b.scores, equal_nan=True)
        assert np.array_equal(trace_a.thresholds, trace_b.thresholds, equal_nan=True)
        assert np.array_equal(trace_a.labels, trace_b.labels)
        assert np.array_equal(trace_a.alert_seqs, trace_b.alert_seqs)
        assert np.array_equal(trace_a.alert_stars, trace_b.alert_stars)

    def test_broken_candidate_is_rejected(self, loop_night, tmp_path, monkeypatch):
        _, drifted, detector, cal_scores, threshold = loop_night
        controller, fleet, registry = _build_controller(
            drifted, detector, cal_scores, threshold, tmp_path
        )

        def blinded_candidate(step, cycle, rows, times):
            # The live model again, but behind an absurd threshold: a
            # candidate that can never alert.  Degraded recall, loudly.
            controller._record(step, "retrain", cycle=cycle, blinded=True)
            return detector, 1.0e9, np.asarray(cal_scores, dtype=np.float64)

        monkeypatch.setattr(controller, "_train_candidate", blinded_candidate)
        ReplayHarness(controller, drifted).run()

        counts = controller.decision_counts()
        assert counts.get("canary_fail", 0) >= 1
        assert counts.get("canary_pass", 0) == 0
        assert counts.get("promote", 0) == 0
        fail = next(e for e in controller.events if e.kind == "canary_fail")
        assert "recall" in fail.detail["failed_gates"]
        assert fail.detail["probes_injected"] is True
        assert fail.detail["candidate_recall"] < fail.detail["live_recall"]

        # The live model is untouched: baseline version, original threshold.
        assert registry.versions(MODEL_NAME) == [1]
        assert controller.live_version == 1
        assert fleet.detector is detector
        assert float(fleet.threshold) == threshold
        assert fleet.model_version == f"{MODEL_NAME}@v0001"

    def test_watch_window_rollback_restores_previous_version(self, loop_night, tmp_path):
        _, drifted, detector, cal_scores, threshold = loop_night
        controller, fleet, registry = _build_controller(
            drifted, detector, cal_scores, threshold, tmp_path
        )
        # Manufacture a fresh promotion (v2 live, watch window armed) and
        # force the drift-retrip condition: any trip total beats baseline.
        v2 = registry.publish(
            MODEL_NAME, detector,
            metadata={"threshold": threshold * 2.0},
            drift_reference=fleet.drift_monitor,
        )
        registry.deploy(MODEL_NAME, fleet, version=v2.version, threshold=threshold * 2.0)
        controller._live_version = v2.version
        controller._watch_until = 10 ** 9
        controller._watch_baseline_trips = -1
        controller._rollback_version = 1
        controller._rollback_threshold = threshold
        assert controller.watching

        controller.step(drifted.exposures[0], float(drifted.timestamps[0]))

        counts = controller.decision_counts()
        assert counts.get("rollback") == 1
        assert controller.live_version == 1
        assert not controller.watching
        assert fleet.model_version == f"{MODEL_NAME}@v0001"
        assert float(fleet.threshold) == threshold
        rollback = next(e for e in controller.events if e.kind == "rollback")
        assert rollback.detail["rolled_back_version"] == 2
        assert rollback.detail["drift_retripped"] is True

    def test_slo_burn_triggers_the_loop(self, loop_night, tmp_path):
        quiet, _, detector, cal_scores, threshold = loop_night
        slo = SLOMonitor(window=64)
        controller, _, _ = _build_controller(
            quiet, detector, cal_scores, threshold, tmp_path, slo=slo
        )
        # Saturate the alert-rate window with bad events: the burn rate is
        # far past the page threshold before any tick is served.
        slo.slos[SLOMonitor.ALERT_RATE].record(good=0, bad=64)
        controller.step(quiet.exposures[0], float(quiet.timestamps[0]))
        trigger = next(e for e in controller.events if e.kind == "trigger")
        # One tick of history cannot feed a retrain: deferred, not crashed.
        assert trigger.detail["action"] == "deferred"
        assert "alert_rate" in trigger.detail["slo_burning"]


# ---------------------------------------------------------------------------
# controller construction contracts
# ---------------------------------------------------------------------------
class TestControllerValidation:
    def test_requires_fitted_drift_monitor(self, loop_night, tmp_path):
        quiet, _, detector, _, threshold = loop_night
        bare = FleetManager(
            detector, num_shards=quiet.config.num_shards, threshold=threshold
        )
        with pytest.raises(ValueError, match="DriftMonitor"):
            ContinualLearningController(
                bare, ModelRegistry(tmp_path / "r"), MODEL_NAME, tmp_path / "w"
            )

    def test_rejects_per_star_fleets(self, loop_night, tmp_path):
        quiet, _, detector, cal_scores, _ = loop_night
        monitor = calibrate_drift_monitor(
            cal_scores, num_stars=quiet.num_stars, **LOOP_MONITOR
        )
        adaptive = FleetManager(
            detector,
            num_shards=quiet.config.num_shards,
            threshold_mode="per_star",
            drift_monitor=monitor,
        )
        with pytest.raises(ValueError, match="global"):
            ContinualLearningController(
                adaptive, ModelRegistry(tmp_path / "r"), MODEL_NAME, tmp_path / "w"
            )

    def test_rejects_bad_window_settings(self, loop_night, tmp_path):
        quiet, _, detector, cal_scores, threshold = loop_night
        for match, overrides in (
            ("calibration_ticks", dict(calibration_ticks=8)),
            ("min_history_ticks", dict(history_ticks=100, min_history_ticks=300)),
            ("watch_ticks", dict(watch_ticks=0)),
        ):
            with pytest.raises(ValueError, match=match):
                _build_controller(
                    quiet, detector, cal_scores, threshold, tmp_path, **overrides
                )


# ---------------------------------------------------------------------------
# canary internals
# ---------------------------------------------------------------------------
class TestCanaryUnits:
    def test_inject_probes_is_deterministic(self):
        rng = np.random.default_rng(5)
        rows = rng.normal(12.0, 0.3, size=(96, 2, 3))
        traffic = ShadowTraffic(rows=rows)
        budget = CanaryBudget()
        probed_a = inject_probes(traffic, budget, seed=41)
        probed_b = inject_probes(traffic, budget, seed=41)
        probed_c = inject_probes(traffic, budget, seed=42)
        assert probed_a.events == probed_b.events
        assert np.array_equal(probed_a.rows, probed_b.rows)
        assert probed_a.events != probed_c.events
        assert len(probed_a.events) == budget.num_probes
        assert len({event.star for event in probed_a.events}) == budget.num_probes
        for event in probed_a.events:
            assert budget.warmup_ticks <= event.start <= event.end < 96
            shard, variate = divmod(event.star, 3)
            window = slice(event.start, event.end + 1)
            assert not np.allclose(
                probed_a.rows[window, shard, variate], rows[window, shard, variate]
            )
        # The recorded traffic itself is never mutated.
        assert np.array_equal(traffic.rows, rows)

    def test_inject_probes_rejects_thin_traffic(self):
        traffic = ShadowTraffic(rows=np.zeros((40, 2, 3)))
        with pytest.raises(ValueError, match="too short"):
            inject_probes(traffic, CanaryBudget(), seed=0)

    def test_score_psi_flags_shifted_scores(self):
        rng = np.random.default_rng(9)
        reference = rng.normal(0.0, 1.0, size=(512, 4))
        same = rng.normal(0.0, 1.0, size=(256, 2, 4))
        assert score_psi(reference, same) < 0.15
        assert score_psi(reference, same + 3.0) > 1.0
        # Canary-sized windows: the sampling-noise floor stays well under
        # the default promotion budget.
        small = rng.normal(0.0, 1.0, size=(96, 2, 4))
        assert score_psi(reference[:48], small) < CanaryBudget().psi_budget / 2

    def test_score_psi_exclusion_mask(self):
        rng = np.random.default_rng(10)
        reference = rng.normal(0.0, 1.0, size=(128, 2))
        spiked = rng.normal(0.0, 1.0, size=(80, 1, 2))
        spiked[20:40, 0, 0] += 50.0
        exclude = np.zeros((80, 2), dtype=bool)
        exclude[20:40, 0] = True
        masked = score_psi(reference, spiked, exclude=exclude)
        assert score_psi(reference, spiked) > masked
        assert masked < 0.2

    def test_report_gates_and_summary(self):
        report = CanaryReport(
            gates=(
                GateResult("traffic", True, 100.0, 64.0),
                GateResult("recall", False, 0.5, 0.95),
            ),
            live_recall=1.0,
            candidate_recall=0.5,
            quiet_false_alerts=0,
            psi_max=0.1,
            num_ticks=100,
            num_events=3,
            probes_injected=True,
        )
        assert not report.passed
        assert report.gate("recall").passed is False
        with pytest.raises(KeyError):
            report.gate("nope")
        assert "FAIL" in report.format()
        assert report.summary()["failed_gates"] == ["recall"]
