"""Tests for TrainingSession: checkpoints, resume determinism, validation
splits, best-weight restore, warm starting and the repro.training logger."""

import logging
from pathlib import Path

import numpy as np
import pytest

from repro.core import ABLATION_VARIANTS, AeroDetector, EarlyStopping
from repro.nn import Linear
from repro.training import TrainingSession



# ----------------------------------------------------------------------
# EarlyStopping: best-weight restore (satellite fix)
# ----------------------------------------------------------------------
class TestEarlyStopping:
    def test_plain_loss_monitoring_still_works(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.step(1.0)
        assert not stopper.step(0.5)
        assert not stopper.step(0.6)
        assert stopper.step(0.7)
        assert stopper.best_loss == 0.5
        assert stopper.best_epoch == 2

    def test_patience_must_be_positive(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_restore_brings_back_best_loss_weights(self):
        module = Linear(2, 2)
        stopper = EarlyStopping(patience=3, min_delta=0.0, module=module)
        snapshots = []
        for epoch, loss in enumerate([1.0, 0.4, 0.9, 0.8, 0.7]):
            module.weight.data = np.full_like(module.weight.data, float(epoch))
            snapshots.append(module.state_dict())
            stopper.step(loss)
        # The last epochs plateaued: weights are from epoch 4, best was epoch 1.
        assert module.weight.data[0, 0] == 4.0
        assert stopper.restore()
        np.testing.assert_array_equal(module.weight.data, snapshots[1]["weight"])
        assert stopper.best_epoch == 2  # 1-based

    def test_restore_without_module_is_a_noop(self):
        stopper = EarlyStopping(patience=2)
        stopper.step(1.0)
        assert not stopper.restore()

    def test_state_dict_roundtrip_preserves_best_state(self):
        module = Linear(3, 1)
        stopper = EarlyStopping(patience=2, min_delta=0.0, module=module)
        stopper.step(0.5)
        module.weight.data = module.weight.data + 1.0
        stopper.step(0.9)

        clone = EarlyStopping(patience=2, min_delta=0.0, module=module)
        clone.load_state_dict(stopper.state_dict())
        assert clone.best_loss == stopper.best_loss
        assert clone.epochs_without_improvement == 1
        assert clone.best_epoch == 1
        assert clone.restore()
        np.testing.assert_array_equal(module.weight.data, stopper.best_state["weight"])

    def test_stage_training_restores_best_epoch_weights(self, tiny_config, train_series, build_setup):
        """End to end: a stage that runs past its best epoch ships the best
        weights, not the post-plateau ones.  A huge ``min_delta`` makes epoch
        1 the (only) improving epoch, so patience forces extra epochs whose
        weights must then be rolled back."""
        config = tiny_config.scaled(
            max_epochs_stage1=6, max_epochs_stage2=1, patience=2, min_delta=10.0
        )
        model, dataset, _ = build_setup(config, train_series)
        session = TrainingSession(model, dataset, config)
        snapshots = []
        previous = 0
        while not session.done:
            session.run(epoch_budget=1, resume=False)
            if session.stage == 1 and session.epochs_completed > previous:
                snapshots.append(model.temporal.state_dict())
                previous = session.epochs_completed
        history = session.history
        # Early stop after 1 best + 2 patience epochs; best is epoch 1.
        assert history.stage1_best_epoch == 1
        assert len(history.stage1_losses) == 3
        final = model.temporal.state_dict()
        assert any(
            not np.array_equal(snapshots[-1][name], snapshots[0][name]) for name in final
        ), "training should have moved the weights past the best epoch"
        for name in final:
            np.testing.assert_array_equal(final[name], snapshots[0][name], err_msg=name)


# ----------------------------------------------------------------------
# Resume determinism (tentpole + satellite test coverage)
# ----------------------------------------------------------------------
RESUME_VARIANTS = ["full", "no_temporal", "no_noise_module", "static_graph", "dynamic_graph"]


@pytest.mark.parametrize("variant", RESUME_VARIANTS)
def test_interrupted_resume_is_bit_identical(variant, tiny_config, train_series, tmp_path, build_setup):
    """Stop after k epochs, resume from the checkpoint in a fresh session, and
    compare against an uninterrupted run: weights must match bit for bit."""
    kwargs = ABLATION_VARIANTS[variant]
    config = tiny_config

    model_a, dataset_a, _ = build_setup(config, train_series, **kwargs)
    history_a = TrainingSession(model_a, dataset_a, config).run()

    checkpoint = tmp_path / f"{variant}.npz"
    model_b, dataset_b, _ = build_setup(config, train_series, **kwargs)
    TrainingSession(model_b, dataset_b, config, checkpoint_path=checkpoint).run(epoch_budget=2)

    # "Crash": throw the half-trained model away, rebuild from scratch, resume.
    model_c, dataset_c, _ = build_setup(config, train_series, **kwargs)
    session_c = TrainingSession.restore(checkpoint, model_c, dataset_c)
    history_c = session_c.run()

    assert session_c.done
    state_a, state_c = model_a.state_dict(), model_c.state_dict()
    assert set(state_a) == set(state_c)
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_c[name], err_msg=name)
    assert history_c.stage1_losses == history_a.stage1_losses
    assert history_c.stage2_losses == history_a.stage2_losses
    assert history_c.stage1_best_epoch == history_a.stage1_best_epoch
    assert history_c.stage2_best_epoch == history_a.stage2_best_epoch


def test_detector_fit_resume_after_interruption(tiny_config, train_series, tmp_path, monkeypatch):
    """Detector-level acceptance: interrupt fit() mid-training, refit with
    resume=True, and match the uninterrupted run's weights and train scores."""
    config = tiny_config
    reference = AeroDetector(config).fit(train_series)

    checkpoint = tmp_path / "session.npz"
    calls = {"count": 0}
    original = TrainingSession._advance

    def interrupting(self):
        calls["count"] += 1
        if calls["count"] > 3:
            raise KeyboardInterrupt("simulated crash")
        return original(self)

    monkeypatch.setattr(TrainingSession, "_advance", interrupting)
    crashed = AeroDetector(config)
    with pytest.raises(KeyboardInterrupt):
        crashed.fit(train_series, checkpoint_path=checkpoint)
    monkeypatch.setattr(TrainingSession, "_advance", original)
    assert checkpoint.exists()

    resumed = AeroDetector(config)
    resumed.fit(train_series, checkpoint_path=checkpoint, resume=True)

    state_ref, state_res = reference.model.state_dict(), resumed.model.state_dict()
    for name in state_ref:
        np.testing.assert_array_equal(state_ref[name], state_res[name], err_msg=name)
    np.testing.assert_array_equal(reference.train_scores_, resumed.train_scores_)
    assert resumed.history.stage1_losses == reference.history.stage1_losses
    assert resumed.history.stage2_losses == reference.history.stage2_losses


def test_resume_of_completed_checkpoint_skips_training(tiny_config, train_series, tmp_path, build_setup):
    checkpoint = tmp_path / "done.npz"
    first = AeroDetector(tiny_config)
    first.fit(train_series, checkpoint_path=checkpoint)

    model, dataset, _ = build_setup(tiny_config, train_series)
    session = TrainingSession.restore(checkpoint, model, dataset)
    assert session.done
    history = session.run()  # returns immediately
    assert history.stage1_losses == first.history.stage1_losses
    for name, value in first.model.state_dict().items():
        np.testing.assert_array_equal(value, model.state_dict()[name])


# ----------------------------------------------------------------------
# Validation-split early stopping
# ----------------------------------------------------------------------
class TestValidationSplit:
    def test_holdout_losses_are_recorded(self, tiny_config, train_series):
        detector = AeroDetector(tiny_config)
        detector.fit(train_series, validation_split=0.25)
        history = detector.history
        assert len(history.stage1_val_losses) == len(history.stage1_losses) > 0
        assert len(history.stage2_val_losses) == len(history.stage2_losses) > 0
        assert all(np.isfinite(history.stage1_val_losses))
        assert history.stage1_best_epoch >= 1

    def test_session_reports_split_sizes(self, tiny_config, train_series, build_setup):
        model, dataset, _ = build_setup(tiny_config, train_series)
        total = len(dataset)
        session = TrainingSession(model, dataset, tiny_config, validation_split=0.25)
        assert session.num_val_windows == int(np.ceil(0.25 * total))
        assert session.num_train_windows == total - session.num_val_windows

    def test_invalid_split_rejected(self, tiny_config, train_series, build_setup):
        model, dataset, _ = build_setup(tiny_config, train_series)
        with pytest.raises(ValueError):
            TrainingSession(model, dataset, tiny_config, validation_split=1.0)
        with pytest.raises(ValueError):
            TrainingSession(model, dataset, tiny_config, validation_split=-0.1)

    def test_validation_does_not_change_training_trajectory(self, tiny_config, train_series, build_setup):
        """The holdout forwards must not perturb training: a split session's
        training losses over the same training windows match a session built
        directly over those windows."""
        model_a, dataset_a, _ = build_setup(tiny_config, train_series)
        split_session = TrainingSession(model_a, dataset_a, tiny_config, validation_split=0.25)
        split_history = split_session.run()

        model_b, dataset_b, _ = build_setup(tiny_config, train_series)
        train_only, _ = dataset_b.split(0.25)
        plain_history = TrainingSession(model_b, train_only, tiny_config).run()

        # The optimization trajectory (per-epoch training losses) is identical;
        # only the *monitored* metric — and therefore which epoch's weights are
        # restored at the end of a stage — may differ.
        assert split_history.stage1_losses == plain_history.stage1_losses
        assert split_history.stage2_losses == plain_history.stage2_losses


# ----------------------------------------------------------------------
# Warm starting
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_fit_warm_start_initialises_from_checkpoint(
        self, tiny_config, train_series, tmp_path
    , build_setup):
        donor = AeroDetector(tiny_config).fit(train_series)
        artifact = donor.save(tmp_path / "donor.npz")

        model, dataset, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model, dataset, tiny_config)
        session.warm_start_from(artifact)
        for name, value in donor.model.state_dict().items():
            np.testing.assert_array_equal(value, model.state_dict()[name])

    def test_warm_start_after_training_started_is_rejected(
        self, tiny_config, train_series, tmp_path
    , build_setup):
        donor = AeroDetector(tiny_config).fit(train_series)
        artifact = donor.save(tmp_path / "donor.npz")
        model, dataset, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model, dataset, tiny_config)
        session.run(epoch_budget=1)
        with pytest.raises(RuntimeError):
            session.warm_start_from(artifact)

    def test_warm_start_architecture_mismatch_names_checkpoint(
        self, tiny_config, train_series, tmp_path
    , build_setup):
        donor = AeroDetector(tiny_config).fit(train_series)
        artifact = donor.save(tmp_path / "donor.npz")
        other = tiny_config.scaled(d_model=16)
        model, dataset, _ = build_setup(other, train_series)
        session = TrainingSession(model, dataset, other)
        with pytest.raises((KeyError, ValueError), match="donor.npz"):
            session.warm_start_from(artifact)

    def test_detector_fit_accepts_warm_start(self, tiny_config, train_series, tmp_path):
        donor = AeroDetector(tiny_config).fit(train_series)
        artifact = donor.save(tmp_path / "donor.npz")
        config = tiny_config.scaled(max_epochs_stage1=1, max_epochs_stage2=1)
        tuned = AeroDetector(config)
        tuned.fit(train_series, warm_start=artifact)
        assert tuned.history.stage1_epochs == 1


# ----------------------------------------------------------------------
# Checkpoint validation
# ----------------------------------------------------------------------
class TestCheckpointValidation:
    def test_missing_checkpoint_raises(self, tiny_config, train_series, tmp_path, build_setup):
        model, dataset, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model, dataset, tiny_config)
        with pytest.raises(FileNotFoundError):
            session.load_checkpoint(tmp_path / "nope.npz")

    def test_config_mismatch_rejected(self, tiny_config, train_series, tmp_path, build_setup):
        checkpoint = tmp_path / "session.npz"
        model, dataset, _ = build_setup(tiny_config, train_series)
        TrainingSession(model, dataset, tiny_config, checkpoint_path=checkpoint).run(
            epoch_budget=1
        )
        other = tiny_config.scaled(learning_rate=5e-3)
        model2, dataset2, _ = build_setup(other, train_series)
        session = TrainingSession(model2, dataset2, other)
        with pytest.raises(ValueError, match="different configuration"):
            session.load_checkpoint(checkpoint)

    def test_validation_split_mismatch_rejected(self, tiny_config, train_series, tmp_path, build_setup):
        checkpoint = tmp_path / "session.npz"
        model, dataset, _ = build_setup(tiny_config, train_series)
        TrainingSession(
            model, dataset, tiny_config, validation_split=0.25, checkpoint_path=checkpoint
        ).run(epoch_budget=1)
        model2, dataset2, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model2, dataset2, tiny_config)
        with pytest.raises(ValueError, match="validation_split"):
            session.load_checkpoint(checkpoint)

    def test_resume_over_different_data_rejected(
        self, tiny_config, train_series, tmp_path, build_setup
    ):
        """A checkpoint must refuse to resume over a different series —
        otherwise a completed checkpoint + resume=True would silently skip
        training on refreshed data and serve stale weights."""
        checkpoint = tmp_path / "session.npz"
        model, dataset, _ = build_setup(tiny_config, train_series)
        TrainingSession(model, dataset, tiny_config, checkpoint_path=checkpoint).run(
            epoch_budget=1
        )
        # Note: a pure shift would be normalised away by the MinMax scaler
        # (identical scaled series -> resume genuinely valid), so drift the
        # shape of the series, not just its offset.
        drifted = train_series + np.random.default_rng(1).normal(0.0, 0.05, train_series.shape)
        model2, dataset2, _ = build_setup(tiny_config, drifted)
        session = TrainingSession(
            model2, dataset2, tiny_config, checkpoint_path=checkpoint
        )
        with pytest.raises(ValueError, match="different training data"):
            session.run()
        # Detector level: fit(resume=True) on new data fails loudly too.
        first = AeroDetector(tiny_config)
        first.fit(train_series, checkpoint_path=tmp_path / "det.npz")
        refreshed = AeroDetector(tiny_config)
        with pytest.raises(ValueError, match="different training data"):
            refreshed.fit(drifted, checkpoint_path=tmp_path / "det.npz", resume=True)
        # Same series but different observation timestamps is different data
        # too: the time-embedding features change.
        t1 = np.arange(len(train_series), dtype=np.float64)
        timed = AeroDetector(tiny_config)
        timed.fit(train_series, t1, checkpoint_path=tmp_path / "timed.npz")
        retimed = AeroDetector(tiny_config)
        with pytest.raises(ValueError, match="different training data"):
            retimed.fit(
                train_series, t1 * 1.5, checkpoint_path=tmp_path / "timed.npz", resume=True
            )

    def test_non_session_archive_rejected(self, tiny_config, train_series, tmp_path, build_setup):
        detector = AeroDetector(tiny_config).fit(train_series)
        artifact = detector.save(tmp_path / "detector.npz")
        model, dataset, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model, dataset, tiny_config)
        with pytest.raises(ValueError, match="checkpoint"):
            session.load_checkpoint(artifact)

    def test_save_without_path_requires_configuration(self, tiny_config, train_series, build_setup):
        model, dataset, _ = build_setup(tiny_config, train_series)
        session = TrainingSession(model, dataset, tiny_config)
        with pytest.raises(ValueError):
            session.save_checkpoint()


# ----------------------------------------------------------------------
# History persistence in detector checkpoints (satellite)
# ----------------------------------------------------------------------
def test_detector_checkpoint_roundtrips_full_history(tiny_config, train_series, tmp_path):
    detector = AeroDetector(tiny_config)
    detector.fit(train_series, validation_split=0.25)
    path = detector.save(tmp_path / "detector.npz")
    restored = AeroDetector.load(path)
    assert restored.history is not None
    assert restored.history.stage1_losses == detector.history.stage1_losses
    assert restored.history.stage2_losses == detector.history.stage2_losses
    assert restored.history.stage1_val_losses == detector.history.stage1_val_losses
    assert restored.history.stage2_val_losses == detector.history.stage2_val_losses
    assert restored.history.stage1_best_epoch == detector.history.stage1_best_epoch
    assert restored.history.stage2_best_epoch == detector.history.stage2_best_epoch


# ----------------------------------------------------------------------
# Logging (satellite: no bare prints, namespaced logger)
# ----------------------------------------------------------------------
class TestTrainingLogging:
    def test_verbose_fit_logs_through_repro_training(
        self, tiny_config, train_series, caplog, capsys
    ):
        with caplog.at_level(logging.INFO, logger="repro.training"):
            AeroDetector(tiny_config, verbose=True).fit(train_series)
        assert caplog.records, "verbose training should emit log records"
        assert all(r.name.startswith("repro.training") for r in caplog.records)
        assert any("[stage 1]" in r.getMessage() for r in caplog.records)
        # Nothing goes to stdout anymore — fleet runs capture the logger instead.
        assert capsys.readouterr().out == ""

    def test_quiet_fit_logs_at_debug_only(self, tiny_config, train_series, caplog):
        with caplog.at_level(logging.INFO, logger="repro.training"):
            AeroDetector(tiny_config).fit(train_series)
        assert not [r for r in caplog.records if r.levelno >= logging.INFO]

    def test_verbose_is_visible_without_logging_config(self):
        """In a bare interpreter (no logging setup at all), verbose=True must
        still show per-epoch progress — the historical print() behaviour."""
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.core import AeroConfig, AeroDetector\n"
            "cfg = AeroConfig.fast(window=16, short_window=6).scaled(\n"
            "    d_model=8, num_heads=2, max_epochs_stage1=1, max_epochs_stage2=1)\n"
            "series = np.random.default_rng(0).normal(10, 1, (120, 2))\n"
            "AeroDetector(cfg, verbose=True).fit(series)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        assert "[stage 1] epoch 1" in result.stderr
        assert "[stage 2] epoch 1" in result.stderr


# ----------------------------------------------------------------------
# Budgeted stepping
# ----------------------------------------------------------------------
def test_epoch_budget_pauses_and_continues_in_memory(tiny_config, train_series, build_setup):
    model, dataset, _ = build_setup(tiny_config, train_series)
    session = TrainingSession(model, dataset, tiny_config)
    session.run(epoch_budget=1)
    assert not session.done
    assert session.stage == 1
    assert session.epochs_completed == 1
    history = session.run()
    assert session.done
    assert session.stage is None
    assert history.stage1_epochs >= 1 and history.stage2_epochs >= 1
    with pytest.raises(ValueError):
        session.run(epoch_budget=0)
