"""Hot-swap tests: registry-published models swapped into live serving
front-ends without dropping buffered state (acceptance criterion of the
training subsystem)."""

import numpy as np
import pytest

from repro.core import AeroDetector
from repro.streaming import FleetManager, StreamingDetector
from repro.training import ModelRegistry


@pytest.fixture
def detectors(tiny_config, train_series):
    """Two independently trained models over drifted versions of one field."""
    rng = np.random.default_rng(9)
    old = AeroDetector(tiny_config).fit(train_series)
    new = AeroDetector(tiny_config.scaled(seed=11)).fit(
        train_series + rng.normal(0.0, 0.05, train_series.shape)
    )
    return old, new


def expected_next_scores(new_detector, raw_history, next_rows):
    """What the swapped-in model should score on the tick after the swap.

    ``raw_history`` are the raw rows (per shard) the stream has seen so far
    — including the raw equivalent of the seeded context — and ``next_rows``
    the rows of the post-swap tick.  The stream's timeline is in index mode,
    so times are global row indices.
    """
    window = new_detector.config.window
    short = new_detector.config.short_window
    num_shards = next_rows.shape[0]
    longs = np.empty((num_shards, next_rows.shape[1], window))
    for shard in range(num_shards):
        rows = np.concatenate([raw_history[shard], next_rows[shard][None]], axis=0)
        scaled = new_detector.scaler.transform(rows[-window:])
        longs[shard] = scaled.T
    end = raw_history.shape[1]  # global index of the new row
    times = np.arange(end - window + 1, end + 1, dtype=np.float64)[None, :].repeat(
        num_shards, axis=0
    )
    return new_detector.score_windows(
        longs, longs[:, :, window - short:], times, times[:, window - short:]
    )


class TestFleetHotSwap:
    def test_next_tick_serves_new_model_without_dropping_state(
        self, detectors, tiny_config, tmp_path
    ):
        old, new = detectors
        num_shards = 2
        fleet = FleetManager(old, num_shards=num_shards)
        rng = np.random.default_rng(17)

        # Raw history starts with the raw equivalent of the seeded context.
        tail, _ = old.window_context()
        raw_history = np.repeat(
            old.scaler.inverse_transform(tail)[None], num_shards, axis=0
        )
        for _ in range(4):
            rows = rng.normal(10.0, 1.0, size=(num_shards, old.model.num_variates))
            fleet.step(rows)
            raw_history = np.concatenate([raw_history, rows[:, None, :]], axis=1)

        registry = ModelRegistry(tmp_path)
        registry.publish("field", new)
        deployed = registry.deploy("field", fleet)
        assert deployed.version == 1

        next_rows = rng.normal(10.0, 1.0, size=(num_shards, old.model.num_variates))
        result = fleet.step(next_rows)
        raw_history_after = np.concatenate([raw_history, next_rows[:, None, :]], axis=1)

        assert result.ready, "hot swap must not drop buffered state"
        assert result.threshold == pytest.approx(new.threshold())
        expected = expected_next_scores(new, raw_history, next_rows)
        np.testing.assert_allclose(result.scores, expected, rtol=1e-9, atol=1e-12)

        # The fleet keeps serving the new model on subsequent ticks too.
        more = rng.normal(10.0, 1.0, size=(num_shards, old.model.num_variates))
        result2 = fleet.step(more)
        expected2 = expected_next_scores(new, raw_history_after, more)
        np.testing.assert_allclose(result2.scores, expected2, rtol=1e-9, atol=1e-12)

    def test_compiled_fleet_stays_compiled_after_swap(self, detectors):
        old, new = detectors
        fleet = FleetManager(old, num_shards=2, backend="compiled")
        rng = np.random.default_rng(3)
        rows = rng.normal(10.0, 1.0, size=(2, old.model.num_variates))
        fleet.step(rows)
        fleet.swap_model(new)
        assert fleet.backend == "compiled"
        result = fleet.step(rows)
        assert result.ready
        assert np.isfinite(result.scores).all()

    def test_swap_preserves_compiled_dtype(self, detectors):
        """A float32-serving fleet must keep float32 plans across a swap."""
        old, new = detectors
        fleet = FleetManager(old, num_shards=1, backend=old.compile(dtype="float32"))
        assert fleet._engine.dtype == np.float32
        fleet.swap_model(new)
        assert fleet.backend == "compiled"
        assert fleet._engine.dtype == np.float32

    def test_swap_from_artifact_path(self, detectors, tmp_path):
        old, new = detectors
        fleet = FleetManager(old, num_shards=1)
        artifact = new.save(tmp_path / "new.npz")
        fleet.swap_model(artifact)
        assert fleet.threshold == pytest.approx(new.threshold())

    def test_swap_rejects_incompatible_models(self, detectors, tiny_config, train_series):
        old, _ = detectors
        fleet = FleetManager(old, num_shards=1)

        fewer_variates = AeroDetector(tiny_config).fit(train_series[:, :2])
        with pytest.raises(ValueError, match="variates"):
            fleet.swap_model(fewer_variates)

        other_window = AeroDetector(
            tiny_config.scaled(window=12, short_window=4)
        ).fit(train_series)
        with pytest.raises(ValueError, match="window geometry"):
            fleet.swap_model(other_window)

        with pytest.raises(TypeError):
            fleet.swap_model(42)

        dynamic = AeroDetector(tiny_config, graph_mode="dynamic").fit(train_series)
        with pytest.raises(ValueError, match="dynamic"):
            fleet.swap_model(dynamic)

    def test_swap_rejects_unfitted_detector(self, detectors):
        old, _ = detectors
        fleet = FleetManager(old, num_shards=1)
        with pytest.raises(RuntimeError):
            fleet.swap_model(AeroDetector())


class TestStreamingHotSwap:
    def test_stream_serves_new_model_next_step(self, detectors):
        old, new = detectors
        stream = StreamingDetector(old)
        rng = np.random.default_rng(23)

        tail, _ = old.window_context()
        raw_history = old.scaler.inverse_transform(tail)
        for _ in range(3):
            row = rng.normal(10.0, 1.0, size=old.model.num_variates)
            stream.step(row)
            raw_history = np.concatenate([raw_history, row[None]], axis=0)

        stream.swap_model(new)
        next_row = rng.normal(10.0, 1.0, size=old.model.num_variates)
        result = stream.step(next_row)
        assert result.ready
        assert result.threshold == pytest.approx(new.threshold())
        expected = expected_next_scores(new, raw_history[None], next_row[None])
        np.testing.assert_allclose(result.scores, expected[0], rtol=1e-9, atol=1e-12)

    def test_adaptive_pot_survives_the_swap(self, detectors):
        old, new = detectors
        stream = StreamingDetector(old, adaptive_pot=True)
        rng = np.random.default_rng(29)
        for _ in range(3):
            stream.step(rng.normal(10.0, 1.0, size=old.model.num_variates))
        pot_before = stream.adaptive_pot
        adaptive_before = stream.adaptive_pot.thresholds.copy()
        stream.swap_model(new)
        # The per-star adaptive state rides across the swap untouched and
        # keeps adapting against the new model's scores.
        assert stream.adaptive_pot is pot_before
        np.testing.assert_array_equal(stream.adaptive_pot.thresholds, adaptive_before)
        result = stream.step(rng.normal(10.0, 1.0, size=old.model.num_variates))
        assert result.adaptive_threshold is not None
        assert result.adaptive_threshold.shape == (old.model.num_variates,)
        assert np.isfinite(adaptive_before).all()

    def test_swap_to_prebuilt_compiled_plans(self, detectors):
        old, new = detectors
        stream = StreamingDetector(old)
        assert stream.backend == "autograd"
        stream.swap_model(new.compile())
        assert stream.backend == "compiled"
        rng = np.random.default_rng(31)
        result = stream.step(rng.normal(10.0, 1.0, size=old.model.num_variates))
        assert result.ready and np.isfinite(result.scores).all()
