"""Tests for ModelRegistry: versioning, atomic publishes, loading and
compiled-plan handoff."""

import json

import numpy as np
import pytest

from repro.core import AeroDetector
from repro.runtime import CompiledDetector
from repro.training import ModelRegistry


@pytest.fixture
def fitted_detector(tiny_config, train_series):
    return AeroDetector(tiny_config).fit(train_series)


class TestVersioning:
    def test_publish_assigns_monotonic_versions(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        first = registry.publish("field-a", fitted_detector)
        second = registry.publish("field-a", fitted_detector)
        assert (first.version, second.version) == (1, 2)
        assert registry.versions("field-a") == [1, 2]
        assert registry.latest("field-a").version == 2
        assert registry.names() == ["field-a"]
        assert first.label == "field-a@v0001"

    def test_get_specific_and_missing_versions(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        assert registry.get("field-a", 1).version == 1
        with pytest.raises(KeyError):
            registry.get("field-a", 9)
        with pytest.raises(KeyError):
            registry.get("never-published")
        assert registry.versions("never-published") == []

    def test_invalid_names_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                registry._check_name(bad)

    def test_manifest_records_metadata(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        version = registry.publish("field-a", fitted_detector, metadata={"f1": 0.9})
        assert version.metadata == {"f1": 0.9}
        manifest = json.loads((version.path / ModelRegistry.MANIFEST).read_text())
        assert manifest["name"] == "field-a"
        assert manifest["version"] == 1
        # Re-reading through the registry surfaces the same metadata.
        assert registry.get("field-a", 1).metadata == {"f1": 0.9}

    def test_half_written_versions_are_invisible(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        # A crashed publish leaves a staging dir (or an empty version dir):
        (tmp_path / "field-a" / ".staging-abc123").mkdir()
        (tmp_path / "field-a" / "v0003").mkdir()  # no artifact inside
        assert registry.versions("field-a") == [1]
        assert registry.latest("field-a").version == 1

    def test_names_skips_foreign_directories(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        (tmp_path / ".git").mkdir()
        (tmp_path / "_cache").mkdir()
        assert registry.names() == ["field-a"]

    def test_concurrent_publishers_never_share_staging(self, tmp_path, fitted_detector):
        """Interleaved publishes of one name must yield two intact versions."""
        import threading

        registry = ModelRegistry(tmp_path)
        artifact = fitted_detector.save(tmp_path / "det.npz")
        errors = []

        def publish():
            try:
                registry.publish("field-a", artifact)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=publish) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        versions = registry.versions("field-a")
        assert len(versions) == 4
        for version in versions:
            loaded = registry.get("field-a", version)
            assert loaded.artifact_path.exists()
            assert (loaded.path / ModelRegistry.MANIFEST).exists()
        assert not list((tmp_path / "field-a").glob(".staging*"))


class TestLoading:
    def test_loaded_detector_scores_identically(self, tmp_path, fitted_detector, train_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        restored = registry.load_detector("field-a")
        np.testing.assert_array_equal(
            fitted_detector.score(train_series[:60]), restored.score(train_series[:60])
        )

    def test_load_compiled_hands_out_plans(self, tmp_path, fitted_detector, train_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        compiled = registry.load_compiled("field-a")
        assert isinstance(compiled, CompiledDetector)
        np.testing.assert_array_equal(
            fitted_detector.score(train_series[:60]), compiled.score(train_series[:60])
        )

    def test_publish_from_existing_artifact_path(self, tmp_path, fitted_detector):
        artifact = fitted_detector.save(tmp_path / "det.npz")
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish("field-a", artifact)
        assert version.artifact_path.exists()
        assert registry.load_detector("field-a").threshold() == fitted_detector.threshold()

    def test_publish_and_restore_per_star_calibration(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        fleet = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        rng = np.random.default_rng(0)
        for _ in range(10):
            fleet.step(rng.normal(10.0, 1.0, size=(2, 3)))
        adapted = fleet.adaptive_pot.thresholds.copy()

        version = registry.publish("field-a", fitted_detector, calibration=fleet)
        assert version.has_calibration
        manifest = json.loads((version.path / ModelRegistry.MANIFEST).read_text())
        assert manifest["calibration"] == ModelRegistry.CALIBRATION
        assert manifest["calibration_stars"] == fleet.num_stars

        # Standalone load restores the exact per-star state.
        restored = registry.load_calibration("field-a")
        np.testing.assert_array_equal(restored.thresholds, adapted)

        # Deploy into a fresh fleet: thresholds come from the registry, not
        # from re-calibrating against the train scores.
        fresh = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        assert not np.array_equal(fresh.adaptive_pot.thresholds, adapted)
        registry.deploy("field-a", fresh)
        np.testing.assert_array_equal(fresh.adaptive_pot.thresholds, adapted)

        # Opting out keeps the target's own calibration.
        keep = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        own = keep.adaptive_pot.thresholds.copy()
        registry.deploy("field-a", keep, restore_calibration=False)
        np.testing.assert_array_equal(keep.adaptive_pot.thresholds, own)

    def test_deploy_leaves_global_mode_targets_alone(self, tmp_path, fitted_detector):
        # A fleet deliberately serving the frozen global threshold must not
        # be silently flipped to per-star semantics by a calibration sidecar.
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        registry.publish("field-a", fitted_detector, calibration=donor)
        target = FleetManager(fitted_detector, num_shards=2)
        registry.deploy("field-a", target)
        assert target.threshold_mode == "global"
        assert target.adaptive_pot is None

    def test_deploy_rejects_star_mismatch_before_the_swap(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        registry.publish("field-a", fitted_detector, calibration=donor)
        mismatched = FleetManager(fitted_detector, num_shards=3, threshold_mode="per_star")
        before = mismatched.adaptive_pot.thresholds.copy()
        with pytest.raises(ValueError, match="before the model swap"):
            registry.deploy("field-a", mismatched)
        # The failed deploy touched nothing: same thresholds, same model.
        np.testing.assert_array_equal(mismatched.adaptive_pot.thresholds, before)
        assert mismatched.detector is fitted_detector

    def test_versions_without_calibration_say_so(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        assert not registry.get("field-a").has_calibration
        with pytest.raises(KeyError):
            registry.load_calibration("field-a")

    def test_publish_rejects_bogus_calibration(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        with pytest.raises(TypeError):
            registry.publish("field-a", fitted_detector, calibration=object())
        with pytest.raises(ValueError):
            registry.publish("field-a", fitted_detector, calibration={"bogus": np.zeros(3)})
        global_fleet = FleetManager(fitted_detector, num_shards=2)
        with pytest.raises(ValueError):
            registry.publish("field-a", fitted_detector, calibration=global_fleet)
        # Failed publishes must not burn version numbers or leave debris.
        assert registry.versions("field-a") == []

    def test_publish_rejects_bogus_sources(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(FileNotFoundError):
            registry.publish("field-a", tmp_path / "missing.npz")
        with pytest.raises(TypeError):
            registry.publish("field-a", object())
        with pytest.raises(RuntimeError):
            # an unfitted detector cannot be saved
            registry.publish("field-a", AeroDetector())
        # Failed publishes must not burn version numbers or leave debris.
        assert registry.versions("field-a") == []
        assert not list((tmp_path / "field-a").glob(".staging*"))


class TestDriftReference:
    @staticmethod
    def _monitor(num_stars, seed=0):
        from repro.obs import DriftMonitor

        rng = np.random.default_rng(seed)
        return DriftMonitor().fit(rng.normal(size=400), num_stars=num_stars)

    def test_publish_and_load_drift_reference(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        monitor = self._monitor(num_stars=6)
        version = registry.publish("field-a", fitted_detector, drift_reference=monitor)
        assert version.has_drift_reference
        manifest = json.loads((version.path / ModelRegistry.MANIFEST).read_text())
        assert manifest["drift_reference"] == ModelRegistry.DRIFT
        assert manifest["drift_stars"] == 6
        restored = registry.load_drift_reference("field-a")
        np.testing.assert_array_equal(restored.ref_probs, monitor.ref_probs)
        np.testing.assert_array_equal(restored.ref_edges, monitor.ref_edges)
        assert restored.halflife == monitor.halflife
        # Live sketches are fresh: the sidecar carries the reference only.
        assert restored.num_observations.sum() == 0

    def test_publish_from_fleet_and_deploy_restores(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(
            fitted_detector, num_shards=2, drift_monitor=self._monitor(num_stars=6)
        )
        registry.publish("field-a", fitted_detector, drift_reference=donor)

        # A target already monitoring drift gets the published reference.
        target = FleetManager(
            fitted_detector, num_shards=2, drift_monitor=self._monitor(num_stars=6, seed=9)
        )
        assert not np.array_equal(
            target.drift_monitor.ref_edges, donor.drift_monitor.ref_edges
        )
        registry.deploy("field-a", target)
        np.testing.assert_array_equal(
            target.drift_monitor.ref_edges, donor.drift_monitor.ref_edges
        )

        # A target without a monitor is left alone (opt-in semantics) ...
        bare = FleetManager(fitted_detector, num_shards=2)
        registry.deploy("field-a", bare)
        assert bare.drift_monitor is None

        # ... and restore_drift=False keeps the target's own reference.
        keep = FleetManager(
            fitted_detector, num_shards=2, drift_monitor=self._monitor(num_stars=6, seed=9)
        )
        own = keep.drift_monitor.ref_edges.copy()
        registry.deploy("field-a", keep, restore_drift=False)
        np.testing.assert_array_equal(keep.drift_monitor.ref_edges, own)

    def test_deploy_rejects_drift_star_mismatch_before_the_swap(
        self, tmp_path, fitted_detector
    ):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        registry.publish(
            "field-a", fitted_detector, drift_reference=self._monitor(num_stars=9)
        )
        target = FleetManager(
            fitted_detector, num_shards=2, drift_monitor=self._monitor(num_stars=6)
        )
        before = target.detector
        with pytest.raises(ValueError, match="before the model swap"):
            registry.deploy("field-a", target)
        assert target.detector is before          # nothing was swapped

    def test_versions_without_drift_reference_say_so(self, tmp_path, fitted_detector):
        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        assert not registry.get("field-a").has_drift_reference
        with pytest.raises(KeyError):
            registry.load_drift_reference("field-a")

    def test_publish_rejects_bogus_drift_references(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        with pytest.raises(TypeError):
            registry.publish("field-a", fitted_detector, drift_reference=object())
        with pytest.raises(ValueError):
            registry.publish(
                "field-a", fitted_detector, drift_reference={"bogus": np.zeros(3)}
            )
        # A fleet without a monitor has no reference sketch to publish.
        bare = FleetManager(fitted_detector, num_shards=2)
        with pytest.raises(ValueError):
            registry.publish("field-a", fitted_detector, drift_reference=bare)
        # Failed publishes must not burn version numbers or leave debris.
        assert registry.versions("field-a") == []


class TestPublishRaceNumbering:
    def test_concurrent_publishes_assign_contiguous_versions(self, tmp_path, fitted_detector):
        """A lost publish race must re-number from the winner, never skip.

        The old retry computed ``latest + 1 + attempt``: the loser of a
        race for v5 would jump straight to v7, leaving a permanent hole at
        v6.  With maximal contention (a barrier start), every version in
        ``1..n`` must exist exactly once.
        """
        import threading

        registry = ModelRegistry(tmp_path)
        artifact = fitted_detector.save(tmp_path / "det.npz")
        publishers = 8
        barrier = threading.Barrier(publishers)
        errors = []

        def publish():
            try:
                barrier.wait()
                registry.publish("field-a", artifact)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=publish) for _ in range(publishers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert registry.versions("field-a") == list(range(1, publishers + 1))


class TestDeployThreshold:
    def test_explicit_threshold_passes_through_the_swap(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        fleet = FleetManager(fitted_detector, num_shards=2, threshold=42.0)
        registry.deploy("field-a", fleet, threshold=7.5)
        assert fleet.threshold == 7.5
        assert fleet.model_version == "field-a@v0001"

    def test_published_threshold_metadata_is_restored(self, tmp_path, fitted_detector):
        import warnings

        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector, metadata={"threshold": 9.25})
        fleet = FleetManager(fitted_detector, num_shards=2, threshold=42.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # restoring must not also warn
            registry.deploy("field-a", fleet)
        assert fleet.threshold == 9.25

    def test_silent_override_loss_warns(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)    # no published threshold
        fleet = FleetManager(fitted_detector, num_shards=2, threshold=42.0)
        with pytest.warns(RuntimeWarning, match="threshold"):
            registry.deploy("field-a", fleet)
        # swap_model's by-design reset still happened — but loudly.
        assert fleet.threshold == fitted_detector.threshold()

    def test_no_override_no_warning(self, tmp_path, fitted_detector):
        import warnings

        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        fleet = FleetManager(fitted_detector, num_shards=2)   # serving train calibration
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            registry.deploy("field-a", fleet)
        assert fleet.threshold == fitted_detector.threshold()

    def test_threshold_passthrough_without_swap_kwarg(self, tmp_path, fitted_detector):
        # StreamingDetector.swap_model has no threshold parameter: deploy
        # must assign the threshold right after the swap instead.
        from repro.streaming import StreamingDetector

        registry = ModelRegistry(tmp_path)
        registry.publish("field-a", fitted_detector)
        stream = StreamingDetector(fitted_detector)
        registry.deploy("field-a", stream, threshold=3.25)
        assert stream.threshold == 3.25
        assert stream.model_version == "field-a@v0001"


class TestDeployStarGuard:
    def test_zero_star_target_fails_loudly_before_the_swap(self, tmp_path, fitted_detector):
        """A malformed target reporting zero stars is a mismatch, not 'unknown'.

        The old guard used ``getattr(...) or getattr(...)``, so a falsy-but-
        present ``num_stars`` fell through to ``num_variates`` and could
        silently skip the pre-swap check entirely.
        """
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        registry.publish("field-a", fitted_detector, calibration=donor)

        class Malformed:
            num_stars = 0                       # present but nonsensical

            def threshold_state(self):
                return {"thresholds": np.zeros(0)}

            def load_threshold_state(self, state):  # pragma: no cover - must not run
                raise AssertionError("restore must not be reached")

            def swap_model(self, model):  # pragma: no cover - must not run
                raise AssertionError("swap must not be reached")

        with pytest.raises(ValueError, match="before the model swap"):
            registry.deploy("field-a", Malformed())

    def test_target_star_count_prefers_num_stars(self):
        class Target:
            num_stars = 6
            num_variates = 3

        assert ModelRegistry._target_star_count(Target()) == 6
        assert ModelRegistry._target_star_count(object()) is None


class TestDeployConsistencyOnRestoreFailure:
    """A failed post-swap sidecar restore must never leave a mixed pair."""

    def test_failed_threshold_restore_swaps_the_old_model_back(
        self, tmp_path, fitted_detector, tiny_config, train_series, monkeypatch
    ):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        candidate = AeroDetector(tiny_config.scaled(seed=99)).fit(train_series)
        registry.publish("field-a", candidate, calibration=donor)

        target = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        before_thresholds = target.adaptive_pot.thresholds.copy()

        def broken_restore(state):
            raise RuntimeError("calibration disk died")

        monkeypatch.setattr(target, "load_threshold_state", broken_restore)
        with pytest.raises(RuntimeError, match="calibration disk died"):
            registry.deploy("field-a", target)
        # Old model + old calibration: consistent, never candidate + old.
        assert target.detector is fitted_detector
        np.testing.assert_array_equal(target.adaptive_pot.thresholds, before_thresholds)
        assert target.model_version is None

    def test_failed_drift_restore_swaps_the_old_model_back(
        self, tmp_path, fitted_detector, tiny_config, train_series, monkeypatch
    ):
        from repro.obs import DriftMonitor
        from repro.streaming import FleetManager

        rng = np.random.default_rng(3)
        monitor = DriftMonitor().fit(rng.normal(size=400), num_stars=6)
        registry = ModelRegistry(tmp_path)
        candidate = AeroDetector(tiny_config.scaled(seed=99)).fit(train_series)
        registry.publish("field-a", candidate, drift_reference=monitor)

        target = FleetManager(
            fitted_detector, num_shards=2,
            drift_monitor=DriftMonitor().fit(rng.normal(size=400), num_stars=6),
        )
        own_reference = target.drift_monitor
        before_threshold = target.threshold

        def broken_restore(state):
            raise RuntimeError("drift disk died")

        monkeypatch.setattr(target, "load_drift_state", broken_restore)
        with pytest.raises(RuntimeError, match="drift disk died"):
            registry.deploy("field-a", target)
        assert target.detector is fitted_detector
        assert target.drift_monitor is own_reference
        assert target.threshold == before_threshold
        assert target.model_version is None

    def test_corrupt_sidecar_rejected_before_the_swap(self, tmp_path, fitted_detector):
        from repro.streaming import FleetManager

        registry = ModelRegistry(tmp_path)
        donor = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        version = registry.publish("field-a", fitted_detector, calibration=donor)
        # Truncate the sidecar to a bare thresholds array: right star count,
        # missing every other state key.
        np.savez_compressed(version.calibration_path, thresholds=np.zeros(6))

        target = FleetManager(fitted_detector, num_shards=2, threshold_mode="per_star")
        before = target.adaptive_pot.thresholds.copy()
        with pytest.raises((KeyError, ValueError)):
            registry.deploy("field-a", target)
        assert target.detector is fitted_detector
        np.testing.assert_array_equal(target.adaptive_pot.thresholds, before)
