"""Shared fixtures for the training-subsystem tests: tiny, fast workloads."""

import numpy as np
import pytest

from repro.core import AeroConfig
from repro.core.model import AeroModel
from repro.data.preprocessing import MinMaxScaler
from repro.data.windows import WindowDataset


@pytest.fixture
def tiny_config():
    """A CPU-cheap configuration (window 16/6, d_model 8, 3+3 epochs)."""
    return AeroConfig.fast(window=16, short_window=6).scaled(
        d_model=8, num_heads=2, max_epochs_stage1=3, max_epochs_stage2=3
    )


@pytest.fixture
def train_series():
    rng = np.random.default_rng(42)
    return rng.normal(10.0, 1.0, size=(150, 3))


@pytest.fixture
def build_setup():
    """The :func:`build_training_setup` helper, as a fixture (the tests
    directory is not a package, so plain imports across files don't work)."""
    return build_training_setup


def build_training_setup(config, series, **variant_kwargs):
    """Replicate ``AeroDetector.fit``'s preprocessing for session-level tests.

    Returns ``(model, window_dataset, scaler)`` — a model with node scales
    set and a stride-matched window dataset over the scaled series.
    """
    scaler = MinMaxScaler()
    scaled = scaler.fit_transform(np.asarray(series, dtype=np.float64))
    model = AeroModel(config, num_variates=series.shape[1], **variant_kwargs)
    if model.noise is not None:
        model.noise.set_node_scales(np.maximum(scaler.data_max_ - scaler.data_min_, 1e-8))
    dataset = WindowDataset(
        scaled,
        window=config.window,
        short_window=config.short_window,
        stride=config.train_stride,
    )
    return model, dataset, scaler
