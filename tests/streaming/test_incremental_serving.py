"""Serving-front tests for ``backend="incremental"``.

The streaming contract: a fleet or stream on the incremental backend must
emit bit-identical scores, labels and thresholds to the same front on the
compiled backend — through warm-up, missing observations, dropout/rejoin
re-arm guards, duplicate and out-of-order frames, and hot model swaps
(each swap discards the cross-tick state, which transparently rebuilds
from the ring buffers on the next tick).
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.core.variants import build_variant
from repro.obs.metrics import MetricsRegistry
from repro.runtime import compile_detector
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario
from repro.streaming import FleetManager, StreamingDetector

NUM_SHARDS = 2
NUM_VARIATES = 4
WINDOW = 16
SHORT = 6


def _fast_config(**overrides) -> AeroConfig:
    settings = dict(
        window=WINDOW,
        short_window=SHORT,
        d_model=8,
        num_heads=2,
        train_stride=3,
        max_epochs_stage1=2,
        max_epochs_stage2=2,
        batch_size=8,
    )
    settings.update(overrides)
    return AeroConfig(**settings)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        ScenarioConfig(
            num_shards=NUM_SHARDS,
            num_variates=NUM_VARIATES,
            train_length=220,
            calibration_length=0,
            night_length=90,
            num_events=2,
            num_duplicate_frames=3,
            num_reordered_frames=3,
            seed=5,
        )
    )


@pytest.fixture(scope="module")
def detector(scenario):
    fitted = AeroDetector(_fast_config())
    fitted.fit(scenario.train)
    return fitted


@pytest.fixture(scope="module")
def swap_detector(scenario):
    # Same geometry, different weights: a plausible retrain to swap in.
    fitted = AeroDetector(_fast_config())
    fitted.fit(scenario.train[7:])
    return fitted


def _assert_results_equal(result_a, result_b, context=""):
    assert result_a.step == result_b.step, context
    assert np.array_equal(result_a.scores, result_b.scores, equal_nan=True), (
        f"{context}: max diff "
        f"{np.nanmax(np.abs(result_a.scores - result_b.scores))}"
    )
    assert np.array_equal(result_a.labels, result_b.labels), context
    if result_a.thresholds is None:
        assert result_b.thresholds is None, context
    else:
        assert np.array_equal(result_a.thresholds, result_b.thresholds), context


class TestFleetIncrementalBackend:
    def test_replay_with_duplicates_and_out_of_order_frames(self, scenario, detector):
        """Raw delivery order (dedupe off) through the replay harness.

        The scenario's arrival schedule contains duplicate and reordered
        frames; both fronts ingest the identical raw sequence, so every
        emitted tick must match bit for bit.
        """
        fleet_compiled = FleetManager(detector, num_shards=NUM_SHARDS, backend="compiled")
        fleet_incremental = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="incremental"
        )
        assert fleet_incremental.backend == "incremental"
        _, trace_compiled = ReplayHarness(fleet_compiled, scenario, dedupe=False).run()
        _, trace_incremental = ReplayHarness(fleet_incremental, scenario, dedupe=False).run()
        assert np.array_equal(
            trace_compiled.scores, trace_incremental.scores, equal_nan=True
        )
        assert np.array_equal(trace_compiled.labels, trace_incremental.labels)
        assert np.array_equal(trace_compiled.thresholds, trace_incremental.thresholds)
        stats = fleet_incremental.incremental_stats()
        assert stats["rebuilds"] == 1
        # The rebuild tick is also served by the incremental kernels (from
        # the freshly seeded rings), so every tick counts as incremental.
        assert stats["incremental_ticks"] == stats["ticks"]
        assert stats["fallback_ticks"] == 0
        assert fleet_compiled.incremental_stats() is None

    def test_hot_swap_mid_stream(self, scenario, detector, swap_detector):
        fleet_compiled = FleetManager(detector, num_shards=NUM_SHARDS, backend="compiled")
        fleet_incremental = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="incremental"
        )
        frames = scenario.frames()[:50]
        for tick, frame in enumerate(frames):
            if tick == 25:
                fleet_compiled.swap_model(swap_detector)
                fleet_incremental.swap_model(swap_detector)
                assert fleet_incremental.backend == "incremental"
            result_compiled = fleet_compiled.step(frame.rows, frame.timestamp)
            result_incremental = fleet_incremental.step(frame.rows, frame.timestamp)
            _assert_results_equal(result_compiled, result_incremental, f"tick {tick}")
        stats = fleet_incremental.incremental_stats()
        # One rebuild at warm start plus one after the swap; the retired
        # pre-swap state's accounting stays in the cumulative totals.
        assert stats["rebuilds"] == 2
        assert stats["ticks"] == len(frames)

    def test_dropout_rejoin_under_rearm_guard(self, scenario, detector):
        rng = np.random.default_rng(23)
        exposures = np.stack([scenario.train[-40:]] * NUM_SHARDS, axis=1)
        exposures = exposures + 0.002 * rng.standard_normal(exposures.shape)
        exposures[10:16, 1, :] = np.nan  # 6-tick dropout, beyond the re-arm gap
        exposures[25, 0, 2] = np.nan     # single-exposure blip
        timestamps = np.cumsum(np.full(len(exposures), 15.0))
        fleet_compiled = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="compiled", rearm_min_gap=3
        )
        fleet_incremental = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="incremental", rearm_min_gap=3
        )
        saw_masked_rejoin = False
        for tick, rows in enumerate(exposures):
            result_compiled = fleet_compiled.step(rows, float(timestamps[tick]))
            result_incremental = fleet_incremental.step(rows, float(timestamps[tick]))
            _assert_results_equal(result_compiled, result_incremental, f"tick {tick}")
            if tick == 16:  # first tick after the dropout: re-arm masked
                assert np.isnan(result_incremental.scores[1]).all()
                saw_masked_rejoin = True
        assert saw_masked_rejoin
        assert fleet_incremental.health().rejoins == fleet_compiled.health().rejoins

    def test_telemetry_counters(self, scenario, detector):
        registry = MetricsRegistry()
        fleet = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="incremental", registry=registry
        )
        rng = np.random.default_rng(31)
        exposures = np.stack([scenario.train[-20:]] * NUM_SHARDS, axis=1)
        exposures = exposures + 0.002 * rng.standard_normal(exposures.shape)
        for rows in exposures:
            fleet.step(rows)
        assert registry.counter("fleet_incremental_rebuilds_total").value == 1
        assert registry.counter("fleet_incremental_ticks_total").value == len(exposures) - 1
        assert registry.counter("fleet_incremental_fallbacks_total").value == 0

    def test_unsupported_profile_counts_fallbacks(self, scenario):
        # Long-window reconstruction has no exact incremental plan: every
        # tick runs the full compiled forward from the state's rings.
        registry = MetricsRegistry()
        detector = build_variant("no_short_window", config=_fast_config())
        detector.fit(scenario.train)
        fleet_compiled = FleetManager(detector, num_shards=NUM_SHARDS, backend="compiled")
        fleet_incremental = FleetManager(
            detector, num_shards=NUM_SHARDS, backend="incremental", registry=registry
        )
        rng = np.random.default_rng(37)
        exposures = np.stack([scenario.train[-15:]] * NUM_SHARDS, axis=1)
        exposures = exposures + 0.002 * rng.standard_normal(exposures.shape)
        for tick, rows in enumerate(exposures):
            result_compiled = fleet_compiled.step(rows)
            result_incremental = fleet_incremental.step(rows)
            _assert_results_equal(result_compiled, result_incremental, f"tick {tick}")
        stats = fleet_incremental.incremental_stats()
        assert stats["fallback_ticks"] == len(exposures)
        assert stats["incremental_ticks"] == 0
        assert registry.counter("fleet_incremental_fallbacks_total").value == len(exposures)
        assert registry.counter("fleet_incremental_ticks_total").value == 0


class TestStreamIncrementalBackend:
    def test_chunked_micro_batches_match_compiled(self, scenario, detector):
        # The reference stream gets its own engine object so nothing is
        # shared with the incremental stream's cached one.
        stream_compiled = StreamingDetector(detector, backend=compile_detector(detector))
        stream_incremental = StreamingDetector(detector, backend="incremental")
        assert stream_incremental.backend == "incremental"
        series = scenario.train[-60:].copy()
        series[12, 1] = np.nan
        series[13, 1] = np.nan
        series[30] = np.nan
        cursor = 0
        for chunk in (7, 1, 13, 5, 20, 11, 3):
            rows = series[cursor : cursor + chunk]
            cursor += chunk
            results_compiled = stream_compiled.step_many(rows)
            results_incremental = stream_incremental.step_many(rows)
            for result_compiled, result_incremental in zip(
                results_compiled, results_incremental
            ):
                assert result_compiled.index == result_incremental.index
                assert result_compiled.ready == result_incremental.ready
                assert np.array_equal(
                    result_compiled.scores, result_incremental.scores, equal_nan=True
                )
                assert np.array_equal(result_compiled.labels, result_incremental.labels)

    def test_hot_swap_mid_stream(self, scenario, detector, swap_detector):
        stream_compiled = StreamingDetector(detector, backend=compile_detector(detector))
        stream_incremental = StreamingDetector(detector, backend="incremental")
        series = scenario.train[-50:]
        for tick in range(len(series)):
            if tick == 20:
                stream_compiled.swap_model(swap_detector)
                stream_incremental.swap_model(swap_detector)
                assert stream_incremental.backend == "incremental"
            result_compiled = stream_compiled.step(series[tick])
            result_incremental = stream_incremental.step(series[tick])
            assert np.array_equal(
                result_compiled.scores, result_incremental.scores, equal_nan=True
            ), f"tick {tick}"
            assert np.array_equal(result_compiled.labels, result_incremental.labels)

    def test_univariate_stream_matches_batch_scores(self, scenario, detector):
        # The per-stream serving path is score_windows, which for the
        # univariate fold is bit-identical to batch scoring; the incremental
        # backend must preserve that equivalence end to end.
        stream_incremental = StreamingDetector(detector, backend="incremental")
        series = scenario.train[-70:]
        streamed = stream_incremental.score_series(series)
        batch = detector.score(series, backend="compiled")
        assert np.array_equal(streamed, batch, equal_nan=True)

    def test_adaptive_pot_rides_along(self, scenario, detector):
        stream_compiled = StreamingDetector(
            detector, backend=compile_detector(detector), adaptive_pot=True
        )
        stream_incremental = StreamingDetector(
            detector, backend="incremental", adaptive_pot=True
        )
        series = scenario.train[-40:]
        for tick in range(len(series)):
            result_compiled = stream_compiled.step(series[tick])
            result_incremental = stream_incremental.step(series[tick])
            assert np.array_equal(
                result_compiled.scores, result_incremental.scores, equal_nan=True
            )
            if result_compiled.adaptive_threshold is None:
                assert result_incremental.adaptive_threshold is None
            else:
                assert np.array_equal(
                    result_compiled.adaptive_threshold,
                    result_incremental.adaptive_threshold,
                    equal_nan=True,
                )
