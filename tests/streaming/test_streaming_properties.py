"""Property-based tests (hypothesis) for the streaming substrate.

Extends the pattern of ``tests/nn/test_tensor_properties.py`` to the
streaming layer: ring-buffer window invariants under arbitrary append
sequences, POT threshold monotonicity in the tail quantile, and bit-level
scalar<->vector equivalence of the incremental POT on random streams."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.streaming import IncrementalPOT, RingBuffer, VectorizedIncrementalPOT

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestRingBufferProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(1, 8),
        values=st.lists(finite_floats, min_size=0, max_size=60),
    )
    def test_window_equals_tail_of_appended_sequence(self, capacity, values):
        """After any append sequence the buffer IS the sequence's tail."""
        buf = RingBuffer(capacity, num_variates=1)
        for value in values:
            buf.append([value])
        assert len(buf) == min(len(values), capacity)
        assert buf.total_appended == len(values)
        assert buf.is_full == (len(values) >= capacity)
        expected = np.asarray(values[-len(buf):], dtype=np.float64).reshape(-1, 1)
        np.testing.assert_array_equal(buf.array(), expected)

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(2, 8),
        values=st.lists(finite_floats, min_size=1, max_size=60),
        length=st.integers(0, 8),
    )
    def test_partial_views_are_contiguous_suffixes(self, capacity, values, length):
        buf = RingBuffer(capacity, num_variates=1)
        for value in values:
            buf.append([value])
        length = min(length, len(buf))
        view = buf.view(length)
        assert view.flags["C_CONTIGUOUS"]
        tail = values[-len(buf):][len(buf) - length:] if length else []
        np.testing.assert_array_equal(
            view, np.asarray(tail, dtype=np.float64).reshape(-1, 1)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(1, 6),
        chunks=st.lists(
            st.lists(finite_floats, min_size=1, max_size=7), min_size=1, max_size=8
        ),
    )
    def test_interleaved_views_never_disturb_contents(self, capacity, chunks):
        """Reading windows between appends (the serving pattern) is read-only."""
        buf = RingBuffer(capacity, num_variates=1)
        appended = []
        for chunk in chunks:
            for value in chunk:
                buf.append([value])
                appended.append(value)
            buf.view(min(len(buf), capacity))  # interleaved read
            expected = np.asarray(appended[-len(buf):], dtype=np.float64).reshape(-1, 1)
            np.testing.assert_array_equal(buf.array(), expected)


def _calibration(values):
    """Calibration scores with guaranteed spread (POT needs a real tail)."""
    base = np.asarray(values, dtype=np.float64)
    return base + np.linspace(0.0, 1.0, base.size)


calibrations = arrays(
    dtype=np.float64,
    shape=st.integers(50, 200),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
).map(_calibration)

streams = st.lists(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=80,
)


class TestIncrementalPOTProperties:
    @settings(max_examples=25, deadline=None)
    @given(calibration=calibrations, stream=streams, qs=st.tuples(
        st.floats(min_value=1e-4, max_value=0.05),
        st.floats(min_value=1e-4, max_value=0.05),
    ))
    def test_threshold_monotone_in_tail_quantile(self, calibration, stream, qs):
        """A rarer tail target (smaller q) never lowers the threshold, at
        calibration time and after every update."""
        q_rare, q_common = min(qs), max(qs)
        rare = IncrementalPOT(q=q_rare).fit(calibration)
        common = IncrementalPOT(q=q_common).fit(calibration)
        assert rare.threshold >= common.threshold - 1e-12
        for score in stream:
            rare.update(score)
            common.update(score)
            assert rare.threshold >= common.threshold - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(calibration=calibrations, stream=streams)
    def test_threshold_never_drops_below_initial(self, calibration, stream):
        pot = IncrementalPOT().fit(calibration)
        for score in stream:
            pot.update(score)
            assert pot.threshold >= pot.initial_threshold

    @settings(max_examples=20, deadline=None)
    @given(
        calibration=calibrations,
        stream=streams,
        num_stars=st.integers(1, 4),
        refit_interval=st.integers(1, 8),
        gap_mask=st.lists(st.booleans(), min_size=80, max_size=80),
    )
    def test_scalar_vector_equivalence_on_random_streams(
        self, calibration, stream, num_stars, refit_interval, gap_mask
    ):
        """One vectorised fleet == num_stars independent scalar POTs, bit for
        bit, on arbitrary streams with arbitrary per-star gaps."""
        vector = VectorizedIncrementalPOT(refit_interval=refit_interval).fit(
            calibration, num_stars=num_stars
        )
        scalars = [
            IncrementalPOT(refit_interval=refit_interval).fit(calibration)
            for _ in range(num_stars)
        ]
        gaps = iter(gap_mask * num_stars)
        for tick, value in enumerate(stream):
            scores = np.asarray(
                [value + 0.37 * star * ((-1.0) ** tick) for star in range(num_stars)]
            )
            scores[[next(gaps) for _ in range(num_stars)]] = np.nan
            flags = vector.update(scores)
            expected = [int(pot.update(float(s))) for pot, s in zip(scalars, scores)]
            np.testing.assert_array_equal(flags, expected)
            np.testing.assert_array_equal(
                vector.thresholds, [pot.threshold for pot in scalars]
            )
            np.testing.assert_array_equal(
                vector.num_excesses, [pot.num_excesses for pot in scalars]
            )
            np.testing.assert_array_equal(
                vector.num_refits, [pot.num_refits for pot in scalars]
            )
