"""NaN hardening of the streaming path: missing observations must not poison
ring buffers, POT state or alert streaks, and dropped-out stars must re-arm
cleanly after rejoining.  Also covers the StreamingService backpressure
contract (bounded submits, partial drains)."""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.streaming import (
    AlertPolicy,
    FleetManager,
    IncrementalPOT,
    StreamingDetector,
    StreamingService,
    VectorizedIncrementalPOT,
)


@pytest.fixture(scope="module")
def fitted():
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    dataset = load_synthetic("SyntheticMiddle", scale=0.05)
    detector = AeroDetector(config)
    detector.fit(dataset.train)
    return detector, dataset


class TestIncrementalPOTNaN:
    def _fitted_pot(self, **kwargs):
        rng = np.random.default_rng(0)
        return IncrementalPOT(**kwargs).fit(rng.normal(size=500))

    def test_nan_update_is_a_no_op(self):
        pot = self._fitted_pot()
        rng = np.random.default_rng(1)
        for score in rng.normal(size=50):
            pot.update(float(score))
        before = (
            pot.threshold, pot.num_observations, pot.num_excesses,
            pot._excesses[: pot.num_excesses].copy(), pot.num_refits,
        )
        for bad in (np.nan, np.inf, -np.inf):
            assert pot.update(bad) is False
        after = (
            pot.threshold, pot.num_observations, pot.num_excesses,
            pot._excesses[: pot.num_excesses].copy(), pot.num_refits,
        )
        assert before[0] == after[0]
        assert before[1] == after[1] and before[2] == after[2]
        np.testing.assert_array_equal(before[3], after[3])
        assert before[4] == after[4]

    def test_vectorized_all_nan_tick_leaves_state_untouched(self):
        rng = np.random.default_rng(2)
        pot = VectorizedIncrementalPOT().fit(rng.normal(size=400), num_stars=6)
        for _ in range(30):
            pot.update(rng.normal(size=6))
        before = pot.state_dict()
        alarms = pot.update(np.full(6, np.nan))
        np.testing.assert_array_equal(alarms, np.zeros(6, dtype=np.int64))
        after = pot.state_dict()
        assert set(before) == set(after)
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_vectorized_partial_nan_only_advances_observed_stars(self):
        rng = np.random.default_rng(3)
        pot = VectorizedIncrementalPOT().fit(rng.normal(size=400), num_stars=4)
        observations_before = pot.num_observations.copy()
        scores = np.array([0.1, np.nan, 0.2, np.nan])
        pot.update(scores)
        delta = pot.num_observations - observations_before
        np.testing.assert_array_equal(delta, [1, 0, 1, 0])

    def test_scalar_vector_equivalence_on_gappy_streams(self):
        rng = np.random.default_rng(4)
        calibration = rng.normal(size=300)
        stars = 5
        vector = VectorizedIncrementalPOT(refit_interval=8).fit(calibration, num_stars=stars)
        scalars = [IncrementalPOT(refit_interval=8).fit(calibration) for _ in range(stars)]
        for _ in range(120):
            scores = rng.normal(size=stars) * 2.0
            scores[rng.random(stars) < 0.15] = np.nan
            flags = vector.update(scores)
            expected = [int(pot.update(float(s))) for pot, s in zip(scalars, scores)]
            np.testing.assert_array_equal(flags, expected)
            np.testing.assert_array_equal(
                vector.thresholds, [pot.threshold for pot in scalars]
            )
            np.testing.assert_array_equal(
                vector.num_observations, [pot.num_observations for pot in scalars]
            )
            np.testing.assert_array_equal(
                vector.num_excesses, [pot.num_excesses for pot in scalars]
            )


class TestAlertPolicyNaN:
    def test_streak_survives_nan_and_fires_after_rejoin(self):
        """The alerts.py NaN rule: a gap neither breaks nor advances a streak."""
        policy = AlertPolicy(min_consecutive=3, cooldown=0)
        assert policy.update(0, np.array([2.0]), 1.0) == []
        assert policy.update(1, np.array([2.0]), 1.0) == []
        assert policy.update(2, np.array([np.nan]), 1.0) == []   # gap mid-streak
        assert policy.update(3, np.array([np.nan]), 1.0) == []   # longer gap
        alerts = policy.update(4, np.array([2.0]), 1.0)          # rejoin completes it
        assert len(alerts) == 1 and alerts[0].step == 4

    def test_star_rearms_after_cooldown_across_a_gap(self):
        policy = AlertPolicy(min_consecutive=1, cooldown=3)
        assert len(policy.update(0, np.array([2.0]), 1.0)) == 1
        assert policy.update(1, np.array([np.nan]), 1.0) == []   # muted + gap
        assert policy.update(3, np.array([2.0]), 1.0) == []      # still muted
        assert len(policy.update(4, np.array([2.0]), 1.0)) == 1  # re-armed

    def test_nan_never_fires_even_when_streak_is_ripe(self):
        policy = AlertPolicy(min_consecutive=1, cooldown=0)
        assert policy.update(0, np.array([np.nan]), 1.0) == []
        assert policy.alerts_fired == 0


class TestStreamingDetectorNaN:
    def test_single_gap_does_not_poison_later_ticks(self, fitted):
        detector, dataset = fitted
        stream = StreamingDetector(detector)
        clean = detector.stream()
        test = dataset.test[:30].copy()
        gap_tick, gap_star = 10, 2
        gappy = test.copy()
        gappy[gap_tick, gap_star] = np.nan

        gap_results = [stream.step(row) for row in gappy]
        clean_results = [clean.step(row) for row in test]

        # The gap tick masks exactly the missing star.
        assert np.isnan(gap_results[gap_tick].scores[gap_star])
        finite = np.delete(gap_results[gap_tick].scores, gap_star)
        assert np.isfinite(finite).all()
        assert gap_results[gap_tick].labels[gap_star] == 0
        # Every later tick emits fully finite scores again (no NaN poisoning
        # of the ring buffer for the next W steps).
        for result in gap_results[gap_tick + 1 :]:
            assert np.isfinite(result.scores).all()
        # Before the gap the streams are bit-identical.
        for mine, theirs in zip(gap_results[:gap_tick], clean_results[:gap_tick]):
            np.testing.assert_array_equal(mine.scores, theirs.scores)

    def test_adaptive_pot_skips_gap_ticks(self, fitted):
        detector, dataset = fitted
        stream = StreamingDetector(detector, adaptive_pot=True)
        observations = stream.adaptive_pot.num_observations.copy()
        row = dataset.test[0].copy()
        row[:] = np.nan
        stream.step(row)
        np.testing.assert_array_equal(stream.adaptive_pot.num_observations, observations)

    def test_consecutive_gaps_carry_last_value_forward(self, fitted):
        detector, dataset = fitted
        stream = StreamingDetector(detector)
        stream.step(dataset.test[0])
        last_scaled = stream._buffer.view(1)[0].copy()
        gap = np.full(detector.model.num_variates, np.nan)
        stream.step(gap)
        stream.step(gap)
        np.testing.assert_array_equal(stream._buffer.view(1)[0], last_scaled)


class TestFleetNaN:
    def test_missing_star_masks_only_its_shard_entry(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, rearm_min_gap=0)
        clean = FleetManager(detector, num_shards=2, rearm_min_gap=0)
        rows = np.stack([dataset.test[0], dataset.test[1]])
        gappy = rows.copy()
        gappy[0, 1] = np.nan

        result = fleet.step(gappy)
        reference = clean.step(rows)
        assert np.isnan(result.scores[0, 1])
        assert result.labels[0, 1] == 0
        # The untouched shard is bit-identical to the clean fleet.
        np.testing.assert_array_equal(result.scores[1], reference.scores[1])
        # Later ticks are finite everywhere again.
        later = fleet.step(rows)
        assert np.isfinite(later.scores).all()

    def test_dropout_rejoin_rearms_before_scoring_again(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=1, rearm_min_gap=3)
        star, gap = 1, 6
        for tick in range(3):
            fleet.step(dataset.test[tick][None, :])
        for tick in range(gap):
            row = dataset.test[3 + tick].copy()
            row[star] = np.nan
            result = fleet.step(row[None, :])
            assert np.isnan(result.scores[0, star])
        # Rejoin: scores stay masked while the window is dominated by
        # imputed rows (gap ticks, since gap < W - 1), then return.
        for tick in range(gap):
            result = fleet.step(dataset.test[9 + tick][None, :])
            assert np.isnan(result.scores[0, star]), f"re-arm tick {tick}"
            assert np.isfinite(np.delete(result.scores[0], star)).all()
        result = fleet.step(dataset.test[15][None, :])
        assert np.isfinite(result.scores).all()

    def test_second_dropout_never_shortens_active_rearm(self, fitted):
        """A fresh short gap during re-arm must extend, not replace, the mask."""
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=1, rearm_min_gap=3)
        star = 0
        tick = iter(range(len(dataset.test)))

        def step(missing: bool):
            row = dataset.test[next(tick)].copy()
            if missing:
                row[star] = np.nan
            return fleet.step(row[None, :])

        step(False)
        for _ in range(8):                      # first dropout: suppression 8
            step(True)
        step(False)                             # rejoin; 7 re-arm ticks remain
        step(False)                             # 6 remain
        for _ in range(3):                      # second, shorter dropout
            step(True)
        # Remaining re-arm (6) exceeds the new gap (3): the star must stay
        # masked for all 6 ticks, not un-mask after 3.
        for remaining in range(6):
            result = step(False)
            assert np.isnan(result.scores[0, star]), f"re-arm tick {remaining}"
        assert np.isfinite(step(False).scores).all()

    def test_threshold_override_rejected_in_per_star_mode(self, fitted):
        detector, _ = fitted
        with pytest.raises(ValueError, match="global"):
            FleetManager(detector, num_shards=1, threshold_mode="per_star", threshold=1.0)

    def test_swap_model_threshold_handling(self, fitted):
        """A swap resets to the new model's calibration unless the caller
        passes a freshly recalibrated serving override."""
        detector, _ = fitted
        fleet = FleetManager(detector, num_shards=1, threshold=9.9)
        assert fleet.threshold == 9.9
        fleet.swap_model(detector)
        assert fleet.threshold == detector.threshold()   # override not carried
        fleet.swap_model(detector, threshold=7.7)
        assert fleet.threshold == 7.7                    # recalibrated override

    def test_short_blip_skips_rearm(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=1, rearm_min_gap=3)
        fleet.step(dataset.test[0][None, :])
        row = dataset.test[1].copy()
        row[0] = np.nan
        fleet.step(row[None, :])
        result = fleet.step(dataset.test[2][None, :])
        assert np.isfinite(result.scores).all()

    def test_per_star_mode_keeps_pot_state_on_all_nan_tick(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=1, threshold_mode="per_star")
        fleet.step(dataset.test[0][None, :])
        before = fleet.adaptive_pot.state_dict()
        fleet.step(np.full((1, detector.model.num_variates), np.nan))
        after = fleet.adaptive_pot.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_rearm_validation(self, fitted):
        detector, _ = fitted
        with pytest.raises(ValueError):
            FleetManager(detector, num_shards=1, rearm_min_gap=-1)


class _CountingFleet:
    """Minimal step(rows, timestamp) scorer for service-level tests."""

    num_stars = 4

    def __init__(self):
        self.steps = 0

    def step(self, rows, timestamp=None):
        self.steps += 1

        class Result:
            scores = np.zeros(4)
            alerts = ()
            step = self.steps

        return Result()


class TestServiceBackpressure:
    def test_submit_sheds_load_at_max_queue(self):
        service = StreamingService(_CountingFleet(), max_queue=3)
        rows = np.zeros((1, 4))
        assert all(service.submit(rows) for _ in range(3))
        assert service.submit(rows) is False          # shed
        assert service.submit(rows) is False          # shed again
        stats = service.stats()
        assert stats.dropped_steps == 2
        assert stats.queue_depth == 3 and stats.max_queue_depth == 3

    def test_under_pressure_flips_at_half_full(self):
        service = StreamingService(_CountingFleet(), max_queue=4)
        rows = np.zeros((1, 4))
        assert not service.under_pressure
        service.submit(rows)
        service.submit(rows)
        assert not service.under_pressure                 # exactly half
        service.submit(rows)
        assert service.under_pressure                     # beyond half

    def test_partial_drain_respects_max_steps(self):
        fleet = _CountingFleet()
        service = StreamingService(fleet, max_queue=8)
        rows = np.zeros((1, 4))
        for _ in range(6):
            service.submit(rows)
        first = service.drain(max_steps=2)
        assert len(first) == 2 and fleet.steps == 2
        assert service.queue_depth == 4
        rest = service.drain()
        assert len(rest) == 4 and service.queue_depth == 0
        assert service.stats().processed_steps == 6

    def test_drain_after_shedding_processes_survivors_in_order(self):
        fleet = _CountingFleet()
        service = StreamingService(fleet, max_queue=2)
        for value in range(5):
            service.submit(np.full((1, 4), float(value)))
        results = service.drain()
        assert len(results) == 2                      # only the queued two
        assert service.stats().dropped_steps == 3

    def test_submitted_rows_are_copied(self):
        service = StreamingService(_CountingFleet(), max_queue=2)
        rows = np.zeros((1, 4))
        service.submit(rows)
        rows[:] = 99.0                                # producer reuses buffer
        queued, _ = service._queue[0]
        np.testing.assert_array_equal(queued, np.zeros((1, 4)))
