"""VectorizedIncrementalPOT: bit-equality with scalar instances, the
max_excesses sliding-calibration path, state persistence and calibration
helpers."""

import numpy as np
import pytest

from repro.streaming import IncrementalPOT, VectorizedIncrementalPOT


def scalar_fleet(num_stars, calibration, **kwargs):
    """Independent scalar instances, one per star, same shared calibration."""
    return [IncrementalPOT(**kwargs).fit(calibration) for _ in range(num_stars)]


def step_both(vec, scalars, scores):
    """Advance both implementations one tick; return (vector, scalar) alarms."""
    expected = np.array(
        [pot.update(float(score)) for pot, score in zip(scalars, scores)], dtype=np.int64
    )
    return vec.update(scores), expected


class TestBitEquality:
    @pytest.mark.parametrize("max_excesses", [None, 24])
    def test_long_stream_matches_scalar_instances(self, max_excesses):
        rng = np.random.default_rng(0)
        num_stars, ticks = 24, 1200
        calibration = rng.exponential(size=1200)
        kwargs = dict(q=1e-3, level=0.95, refit_interval=8, max_excesses=max_excesses)
        scalars = scalar_fleet(num_stars, calibration, **kwargs)
        vec = VectorizedIncrementalPOT(**kwargs).fit(calibration, num_stars=num_stars)
        np.testing.assert_array_equal(vec.thresholds, [pot.threshold for pot in scalars])

        # Per-star scale drift makes the streams (and thus the staggered
        # re-fit cadences) diverge star by star.
        drift = 1.0 + 0.5 * np.arange(num_stars) / num_stars
        for tick in range(ticks):
            scores = rng.exponential(size=num_stars) * drift
            alarms, expected = step_both(vec, scalars, scores)
            np.testing.assert_array_equal(alarms, expected)
            np.testing.assert_array_equal(vec.thresholds, [pot.threshold for pot in scalars])
        np.testing.assert_array_equal(vec.num_refits, [pot.num_refits for pot in scalars])
        np.testing.assert_array_equal(
            vec.num_observations, [pot.num_observations for pot in scalars]
        )
        np.testing.assert_array_equal(vec.num_excesses, [pot.num_excesses for pot in scalars])
        for star, pot in enumerate(scalars):
            np.testing.assert_array_equal(
                vec._pool[star, : vec._counts[star]], pot._excesses[: pot.num_excesses]
            )

    def test_per_star_calibration_rows(self):
        rng = np.random.default_rng(1)
        rows = rng.exponential(size=(6, 600)) * (1.0 + np.arange(6)[:, None] / 6.0)
        vec = VectorizedIncrementalPOT(level=0.95).fit(rows)
        scalars = [IncrementalPOT(level=0.95).fit(row) for row in rows]
        np.testing.assert_array_equal(vec.thresholds, [pot.threshold for pot in scalars])
        np.testing.assert_array_equal(
            vec.initial_thresholds, [pot.initial_threshold for pot in scalars]
        )

    def test_anomalies_are_excluded_from_the_tail_model(self):
        rng = np.random.default_rng(2)
        calibration = rng.exponential(size=1000)
        vec = VectorizedIncrementalPOT(level=0.95).fit(calibration, num_stars=4)
        excesses_before = vec.num_excesses.copy()
        alarms = vec.update(np.full(4, 1e9))
        np.testing.assert_array_equal(alarms, np.ones(4, dtype=np.int64))
        np.testing.assert_array_equal(vec.num_excesses, excesses_before)
        # ... but the observation count (and hence the threshold) refreshed.
        assert (vec.num_observations == calibration.size + 1).all()

    def test_alarm_shape_follows_input_shape(self):
        rng = np.random.default_rng(3)
        vec = VectorizedIncrementalPOT().fit(rng.exponential(size=500), num_stars=6)
        alarms = vec.update(np.zeros((2, 3)))
        assert alarms.shape == (2, 3)
        assert alarms.dtype == np.int64


class TestSlidingCalibration:
    """The max_excesses path: bounded memory must not corrupt the threshold."""

    def test_bounded_stream_tracks_unbounded_reference(self):
        # A long stationary stream under a tight excess cap must keep its
        # thresholds within tolerance of the unbounded reference fleet.
        rng = np.random.default_rng(4)
        calibration = rng.exponential(size=3000)
        capped = VectorizedIncrementalPOT(level=0.99, max_excesses=48).fit(
            calibration, num_stars=8
        )
        unbounded = VectorizedIncrementalPOT(level=0.99).fit(calibration, num_stars=8)
        for _ in range(4000):
            scores = rng.exponential(size=8)
            # Stay below the running thresholds so both fleets keep enriching
            # their tails instead of flagging anomalies.
            scores = np.minimum(scores, capped.thresholds * 0.999)
            scores = np.minimum(scores, unbounded.thresholds * 0.999)
            capped.update(scores)
            unbounded.update(scores)
        assert (capped.num_excesses <= 48).all()
        assert (capped.thresholds > capped.initial_thresholds * 1.05).all()
        np.testing.assert_allclose(capped.thresholds, unbounded.thresholds, rtol=0.35)

    def test_observation_rescale_never_undercuts_the_excess_count(self):
        # The n <- n * keep / count rescale must clamp at the excess count;
        # otherwise q*n/N_t compares mismatched populations.
        rng = np.random.default_rng(5)
        vec = VectorizedIncrementalPOT(level=0.5, max_excesses=8).fit(
            rng.exponential(size=400), num_stars=5
        )
        band = vec.initial_thresholds * 1.01
        for _ in range(300):
            vec.update(np.minimum(band, vec.thresholds * 0.999))
            assert (vec.num_observations >= vec.num_excesses).all()
        assert (vec.num_excesses <= 8).all()


class TestStatePersistence:
    def test_state_dict_round_trip_continues_bit_identically(self):
        rng = np.random.default_rng(6)
        vec = VectorizedIncrementalPOT(level=0.95, refit_interval=8, max_excesses=32).fit(
            rng.exponential(size=800), num_stars=10
        )
        for _ in range(200):
            vec.update(rng.exponential(size=10))
        clone = VectorizedIncrementalPOT.from_state_dict(vec.state_dict())
        assert clone.num_stars == 10
        assert clone.max_excesses == 32
        for _ in range(200):
            scores = rng.exponential(size=10)
            np.testing.assert_array_equal(vec.update(scores), clone.update(scores))
            np.testing.assert_array_equal(vec.thresholds, clone.thresholds)
        np.testing.assert_array_equal(vec.num_refits, clone.num_refits)

    def test_state_dict_validates_missing_and_ragged_keys(self):
        rng = np.random.default_rng(7)
        vec = VectorizedIncrementalPOT().fit(rng.exponential(size=500), num_stars=4)
        state = vec.state_dict()
        broken = dict(state)
        del broken["counts"]
        with pytest.raises(ValueError, match="missing"):
            VectorizedIncrementalPOT.from_state_dict(broken)
        ragged = dict(state)
        ragged["counts"] = state["counts"][:2]
        with pytest.raises(ValueError, match="star count"):
            VectorizedIncrementalPOT.from_state_dict(ragged)

    def test_unfitted_export_and_update_raise(self):
        vec = VectorizedIncrementalPOT()
        with pytest.raises(RuntimeError):
            vec.state_dict()
        with pytest.raises(RuntimeError):
            vec.update(np.zeros(3))
        with pytest.raises(RuntimeError):
            vec.tile(2)


class TestCalibrationHelpers:
    def test_fit_validation(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            VectorizedIncrementalPOT().fit(rng.exponential(size=100))  # no num_stars
        with pytest.raises(ValueError):
            VectorizedIncrementalPOT().fit(rng.exponential(size=(2, 100)), num_stars=3)
        with pytest.raises(ValueError):
            VectorizedIncrementalPOT().fit(rng.exponential(size=(2, 2, 100)))
        with pytest.raises(ValueError):
            VectorizedIncrementalPOT(q=0.0)
        fitted = VectorizedIncrementalPOT().fit(rng.exponential(size=100), num_stars=2)
        with pytest.raises(ValueError):
            fitted.update(np.zeros(3))

    def test_tile_repeats_state_shard_major(self):
        rng = np.random.default_rng(9)
        rows = rng.exponential(size=(3, 400))
        vec = VectorizedIncrementalPOT(level=0.95).fit(rows)
        tiled = vec.tile(4)
        assert tiled.num_stars == 12
        for rep in range(4):
            np.testing.assert_array_equal(
                tiled.thresholds[rep * 3 : (rep + 1) * 3], vec.thresholds
            )
        with pytest.raises(ValueError):
            vec.tile(0)
