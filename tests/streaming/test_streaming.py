"""Unit tests for the streaming subsystem: ring buffer, online scoring,
incremental POT, fleet serving, alerting and the ingestion service."""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.evaluation import pot_threshold
from repro.streaming import (
    AlertPolicy,
    FleetManager,
    IncrementalPOT,
    RingBuffer,
    StreamingDetector,
    StreamingService,
)


class TestRingBuffer:
    def test_append_and_view(self):
        buf = RingBuffer(4, num_variates=2)
        assert len(buf) == 0 and not buf.is_full
        for i in range(3):
            buf.append([float(i), float(i) + 10.0])
        assert len(buf) == 3
        np.testing.assert_allclose(buf.view()[:, 0], [0.0, 1.0, 2.0])
        np.testing.assert_allclose(buf.view(2)[:, 0], [1.0, 2.0])

    def test_eviction_keeps_last_capacity_rows(self):
        buf = RingBuffer(3, num_variates=1)
        for i in range(10):
            buf.append([float(i)])
        assert len(buf) == 3 and buf.is_full
        assert buf.total_appended == 10
        np.testing.assert_allclose(buf.view().ravel(), [7.0, 8.0, 9.0])

    def test_wraparound_views_stay_contiguous_and_correct(self):
        # Push far past several compactions and check every intermediate view.
        capacity = 5
        buf = RingBuffer(capacity, num_variates=1)
        for i in range(7 * capacity + 3):
            buf.append([float(i)])
            expected = np.arange(max(0, i - capacity + 1), i + 1, dtype=np.float64)
            view = buf.view(min(len(buf), capacity))
            assert view.flags["C_CONTIGUOUS"]
            np.testing.assert_allclose(view.ravel(), expected)

    def test_scalar_buffer_wraparound(self):
        buf = RingBuffer(4)
        for i in range(25):
            buf.append(float(i))
        np.testing.assert_allclose(buf.view(), [21.0, 22.0, 23.0, 24.0])

    def test_view_is_zero_copy(self):
        buf = RingBuffer(4, num_variates=2)
        for i in range(4):
            buf.append([float(i), 0.0])
        view = buf.view()
        assert view.base is buf._data

    def test_array_is_a_safe_copy(self):
        buf = RingBuffer(2, num_variates=1)
        buf.append([1.0])
        buf.append([2.0])
        snapshot = buf.array()
        buf.append([3.0])
        np.testing.assert_allclose(snapshot.ravel(), [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0)
        with pytest.raises(ValueError):
            RingBuffer(3, num_variates=0)
        buf = RingBuffer(3, num_variates=2)
        with pytest.raises(ValueError):
            buf.append([1.0])
        with pytest.raises(ValueError):
            buf.view(1)

    def test_extend_and_clear(self):
        buf = RingBuffer(3, num_variates=1)
        buf.extend([[1.0], [2.0], [3.0], [4.0]])
        np.testing.assert_allclose(buf.view().ravel(), [2.0, 3.0, 4.0])
        buf.clear()
        assert len(buf) == 0 and buf.total_appended == 0


@pytest.fixture(scope="module")
def fitted():
    """A small fitted detector plus its dataset, shared across tests."""
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    dataset = load_synthetic("SyntheticMiddle", scale=0.05)
    detector = AeroDetector(config)
    detector.fit(dataset.train, dataset.train_timestamps)
    return detector, dataset


class TestStreamingEquivalence:
    def test_score_series_matches_batch_bit_for_bit(self, fitted):
        detector, dataset = fitted
        batch_scores = detector.score(dataset.test)
        stream_scores = detector.stream().score_series(dataset.test)
        assert np.array_equal(batch_scores, stream_scores)

    def test_score_series_matches_batch_with_timestamps(self, fitted):
        detector, dataset = fitted
        batch_scores = detector.score(dataset.test, dataset.test_timestamps)
        stream = StreamingDetector(detector)
        stream_scores = stream.score_series(dataset.test, dataset.test_timestamps)
        assert np.array_equal(batch_scores, stream_scores)

    def test_step_by_step_matches_batch(self, fitted):
        detector, dataset = fitted
        batch_scores = detector.score(dataset.test)
        stream = detector.stream()
        per_step = np.stack([stream.step(row).scores for row in dataset.test])
        np.testing.assert_allclose(per_step, batch_scores, rtol=0, atol=1e-10)

    def test_labels_match_detect(self, fitted):
        detector, dataset = fitted
        batch_labels = detector.detect(dataset.test)
        stream_labels = detector.stream().detect_series(dataset.test)
        assert np.array_equal(batch_labels, stream_labels)

    def test_micro_batch_sizes_do_not_change_scores(self, fitted):
        detector, dataset = fitted
        reference = detector.stream().score_series(dataset.test)
        stream = detector.stream()
        chunks = [dataset.test[i : i + 7] for i in range(0, len(dataset.test), 7)]
        collected = [r.scores for chunk in chunks for r in stream.step_many(chunk)]
        np.testing.assert_allclose(np.stack(collected), reference, rtol=0, atol=1e-10)

    def test_stream_requires_fitted_detector(self):
        with pytest.raises(RuntimeError):
            StreamingDetector(AeroDetector(AeroConfig.fast()))

    def test_step_validates_row_shape(self, fitted):
        detector, _ = fitted
        stream = detector.stream()
        with pytest.raises(ValueError):
            stream.step(np.zeros(3))

    def test_timestamp_mode_is_locked(self, fitted):
        detector, dataset = fitted
        stream = StreamingDetector(detector)
        stream.step(dataset.test[0], timestamp=float(dataset.test_timestamps[0]))
        with pytest.raises(ValueError):
            stream.step(dataset.test[1])

    def test_late_timestamps_raise_instead_of_silently_dropping(self, fitted):
        # Symmetric with the real->missing direction: once the stream locked
        # into index mode while real times were available, supplying one
        # later is an inconsistency, not a no-op.
        detector, dataset = fitted
        stream = StreamingDetector(detector)
        stream.step(dataset.test[0])
        with pytest.raises(ValueError):
            stream.step(dataset.test[1], timestamp=float(dataset.test_timestamps[1]))

    def test_timestamps_ignored_when_detector_has_no_tail_times(self, fitted):
        # Batch parity: a detector fitted without timestamps ignores caller
        # timestamps, so the stream must accept (and ignore) them too.
        detector, dataset = fitted
        no_times = AeroDetector(detector.config)
        no_times.fit(dataset.train)  # no timestamps stored
        batch_scores = no_times.score(dataset.test, dataset.test_timestamps)
        stream = no_times.stream()
        stream_scores = stream.score_series(dataset.test, dataset.test_timestamps)
        assert np.array_equal(batch_scores, stream_scores)

    def test_adaptive_pot_tracks_per_star_thresholds(self, fitted):
        detector, dataset = fitted
        stream = detector.stream(adaptive_pot=True, pot_refit_interval=8)
        result = None
        for row in dataset.test[:10]:
            result = stream.step(row)
        assert result.adaptive_threshold is not None
        assert result.adaptive_threshold.shape == (stream.num_variates,)
        assert np.isfinite(result.adaptive_threshold).all()

    def test_adaptive_pot_matches_scalar_per_variate_reference(self, fitted):
        # The stream's vectorized POT must equal one scalar IncrementalPOT
        # per variate, calibrated on that variate's training scores.
        detector, dataset = fitted
        stream = detector.stream(adaptive_pot=True, pot_refit_interval=8)
        train = np.asarray(detector.train_scores_)
        refs = [
            IncrementalPOT(
                q=detector.config.pot_q, level=detector.config.pot_level, refit_interval=8
            ).fit(train[:, v])
            for v in range(stream.num_variates)
        ]
        for row in dataset.test[:20]:
            result = stream.step(row)
            for ref, score in zip(refs, result.scores):
                ref.update(float(score))
            np.testing.assert_array_equal(
                result.adaptive_threshold, [ref.threshold for ref in refs]
            )

    def test_threshold_state_round_trip(self, fitted):
        detector, dataset = fitted
        stream = detector.stream(adaptive_pot=True)
        for row in dataset.test[:10]:
            stream.step(row)
        state = stream.threshold_state()
        other = detector.stream(adaptive_pot=False)
        assert other.threshold_state() is None
        other.load_threshold_state(state)
        np.testing.assert_array_equal(
            other.adaptive_pot.thresholds, stream.adaptive_pot.thresholds
        )


class TestStreamingWarmup:
    def test_short_training_series_still_matches_batch(self):
        # fit() clamps the window to the train length, so even a tiny train
        # series yields a full context tail; equivalence must survive the clamp.
        config = AeroConfig(
            window=20, short_window=6, d_model=8, num_heads=2,
            train_stride=2, max_epochs_stage1=2, max_epochs_stage2=2,
            batch_size=8, learning_rate=5e-3,
        )
        rng = np.random.default_rng(7)
        train = rng.normal(size=(12, 3))
        test = rng.normal(size=(40, 3))
        detector = AeroDetector(config).fit(train)
        batch_scores = detector.score(test)
        stream = detector.stream()
        stream_scores = stream.score_series(test)
        assert np.array_equal(batch_scores, stream_scores)

    def test_cold_start_warmup_reports_not_ready(self, fitted):
        detector, dataset = fitted
        stream = detector.stream(seed_context=False)
        first = stream.step(dataset.test[0])
        assert not first.ready
        assert np.isnan(first.scores).all()
        assert not stream.warmed_up
        for t in range(1, detector.config.window):
            result = stream.step(dataset.test[t])
        assert result.ready and stream.warmed_up
        assert np.isfinite(result.scores).all()


class TestIncrementalPOT:
    def test_matches_batch_pot_at_calibration(self):
        rng = np.random.default_rng(0)
        scores = rng.exponential(size=4000)
        inc = IncrementalPOT(q=1e-3, level=0.99).fit(scores)
        batch = pot_threshold(scores, level=0.99, q=1e-3)
        assert inc.threshold == pytest.approx(batch, rel=0.15)

    def test_anomaly_branch_refreshes_threshold(self):
        rng = np.random.default_rng(6)
        cal = rng.exponential(size=2000)
        anomalous, benign = IncrementalPOT().fit(cal), IncrementalPOT().fit(cal)
        assert anomalous.update(1e9)       # anomaly branch
        assert not benign.update(1e-9)     # benign, below the initial threshold
        # Both saw one more observation and no new excess, so their
        # closed-form thresholds must agree — the anomaly branch used to
        # return early with a stale observation count.
        assert anomalous.threshold == benign.threshold

    def test_flags_extreme_scores(self):
        rng = np.random.default_rng(1)
        inc = IncrementalPOT().fit(rng.exponential(size=2000))
        assert inc.update(1e6)
        assert not inc.update(1e-6)

    def test_refit_is_amortised(self):
        rng = np.random.default_rng(2)
        inc = IncrementalPOT(level=0.5, refit_interval=16).fit(rng.exponential(size=500))
        refits_before = inc.num_refits
        # Feed scores in the excess band (above initial, below final threshold).
        band = (inc.initial_threshold + inc.threshold) / 2.0
        for _ in range(64):
            inc.update(band)
        new_refits = inc.num_refits - refits_before
        assert 1 <= new_refits <= 64 // 16 + 1

    def test_threshold_tightens_with_observations(self):
        rng = np.random.default_rng(3)
        inc = IncrementalPOT().fit(rng.exponential(size=2000))
        before = inc.threshold
        for _ in range(500):
            inc.update(0.01)
        # More observations with no new excesses -> larger n/N_t ratio ->
        # the tail quantile moves (monotonically, for a fixed fit).
        assert inc.threshold != before
        assert inc.num_observations == 2500

    def test_max_excesses_bounds_memory(self):
        rng = np.random.default_rng(4)
        inc = IncrementalPOT(level=0.5, max_excesses=32).fit(rng.exponential(size=400))
        band = inc.initial_threshold * 1.01
        for _ in range(200):
            inc.update(band)
        assert inc.num_excesses <= 32

    def test_max_excesses_does_not_collapse_threshold(self):
        # Trimming excesses must discount n too, or q*n/N_t inflates and the
        # threshold decays to the clamp floor on long stationary streams.
        rng = np.random.default_rng(5)
        capped = IncrementalPOT(q=1e-3, level=0.99, max_excesses=64).fit(rng.exponential(size=5000))
        uncapped = IncrementalPOT(q=1e-3, level=0.99).fit(rng.exponential(size=5000))
        for score in rng.exponential(size=20000):
            capped.update(float(min(score, capped.threshold * 0.999)))
            uncapped.update(float(min(score, uncapped.threshold * 0.999)))
        assert capped.threshold > capped.initial_threshold * 1.05
        assert capped.threshold == pytest.approx(uncapped.threshold, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalPOT(q=0.0)
        with pytest.raises(ValueError):
            IncrementalPOT(refit_interval=0)
        with pytest.raises(RuntimeError):
            IncrementalPOT().update(1.0)


class TestAlertPolicy:
    def test_debounce_requires_consecutive_exceedances(self):
        policy = AlertPolicy(min_consecutive=3, cooldown=0)
        scores = np.array([[10.0, 0.0]])
        assert policy.update(0, scores, 1.0) == []
        assert policy.update(1, scores, 1.0) == []
        alerts = policy.update(2, scores, 1.0)
        assert len(alerts) == 1
        assert alerts[0].star == 0 and alerts[0].variate == 0 and alerts[0].step == 2

    def test_streak_resets_on_gap(self):
        policy = AlertPolicy(min_consecutive=2, cooldown=0)
        hot = np.array([5.0])
        cold = np.array([0.0])
        policy.update(0, hot, 1.0)
        policy.update(1, cold, 1.0)
        assert policy.update(2, hot, 1.0) == []  # streak restarted

    def test_cooldown_suppresses_repeat_alerts(self):
        policy = AlertPolicy(min_consecutive=1, cooldown=5)
        hot = np.array([9.0])
        assert len(policy.update(0, hot, 1.0)) == 1
        for step in range(1, 6):
            assert policy.update(step, hot, 1.0) == []
        assert len(policy.update(6, hot, 1.0)) == 1
        assert policy.alerts_fired == 2

    def test_nan_scores_do_not_fire_or_reset(self):
        policy = AlertPolicy(min_consecutive=2, cooldown=0)
        hot = np.array([9.0])
        nan = np.array([np.nan])
        policy.update(0, hot, 1.0)
        assert policy.update(1, nan, 1.0) == []
        # NaN neither fired nor broke the streak; next exceedance completes it.
        assert len(policy.update(2, hot, 1.0)) == 1

    def test_shard_decoding(self):
        policy = AlertPolicy(min_consecutive=1, cooldown=0)
        scores = np.zeros((2, 3))
        scores[1, 2] = 7.0
        alerts = policy.update(0, scores, 1.0)
        assert len(alerts) == 1
        assert alerts[0].shard == 1 and alerts[0].variate == 2 and alerts[0].star == 5

    def test_explicit_shard_width_fixes_flattened_input(self):
        # Pre-flattened fleet scores carry no geometry; inferring the shard
        # width from the last axis would decode every alert as shard 0.
        policy = AlertPolicy(min_consecutive=1, cooldown=0)
        flat = np.zeros(6)
        flat[5] = 7.0
        alerts = policy.update(0, flat, 1.0, shard_width=3)
        assert len(alerts) == 1
        assert alerts[0].shard == 1 and alerts[0].variate == 2 and alerts[0].star == 5
        with pytest.raises(ValueError):
            policy.update(1, flat, 1.0, shard_width=0)

    def test_per_star_thresholds_gate_and_are_recorded(self):
        policy = AlertPolicy(min_consecutive=1, cooldown=0)
        scores = np.array([2.0, 2.0, 2.0])
        thresholds = np.array([1.0, 3.0, 1.5])
        alerts = policy.update(0, scores, thresholds)
        assert [a.star for a in alerts] == [0, 2]
        # Each alert records the threshold that actually fired it.
        assert [a.threshold for a in alerts] == [1.0, 1.5]
        with pytest.raises(ValueError):
            policy.update(1, scores, np.array([1.0, 2.0]))


class TestFleetManager:
    def test_fleet_matches_single_stream(self, fitted):
        detector, dataset = fitted
        num_shards = 3
        fleet = FleetManager(detector, num_shards=num_shards,
                             alert_policy=AlertPolicy(min_consecutive=1, cooldown=0))
        stream = detector.stream()
        for t in range(12):
            rows = np.stack([dataset.test[t]] * num_shards)
            fleet_result = fleet.step(rows)
            stream_result = stream.step(dataset.test[t])
            for shard in range(num_shards):
                np.testing.assert_allclose(
                    fleet_result.scores[shard], stream_result.scores, rtol=0, atol=1e-10
                )

    def test_fleet_with_real_timestamps_matches_stream(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        stream = StreamingDetector(detector)
        for t in range(12):
            rows = np.stack([dataset.test[t]] * 2)
            timestamp = float(dataset.test_timestamps[t])
            fleet_result = fleet.step(rows, timestamp)
            stream_result = stream.step(dataset.test[t], timestamp)
            for shard in range(2):
                np.testing.assert_allclose(
                    fleet_result.scores[shard], stream_result.scores, rtol=0, atol=1e-10
                )

    def test_fleet_timestamp_mode_is_locked(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        fleet.step(np.stack([dataset.test[0]] * 2), float(dataset.test_timestamps[0]))
        with pytest.raises(ValueError):
            fleet.step(np.stack([dataset.test[1]] * 2))

    def test_fleet_rejects_dynamic_graph_mode(self, fitted):
        # Dynamic-graph smoothing chains state across batch elements, which
        # would couple unrelated shards; the fleet must refuse upfront.
        _, dataset = fitted
        config = AeroConfig(
            window=24, short_window=8, d_model=16, num_heads=2,
            train_stride=3, max_epochs_stage1=1, max_epochs_stage2=1,
            batch_size=16, learning_rate=5e-3,
        )
        dynamic = AeroDetector(config, graph_mode="dynamic")
        dynamic.fit(dataset.train[:60])
        with pytest.raises(ValueError):
            FleetManager(dynamic, num_shards=2)

    def test_fleet_step_shape_validation(self, fitted):
        detector, _ = fitted
        fleet = FleetManager(detector, num_shards=2)
        with pytest.raises(ValueError):
            fleet.step(np.zeros((3, detector.model.num_variates)))

    def test_cold_start_warms_up(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, seed_context=False)
        result = fleet.step(np.stack([dataset.test[0]] * 2))
        assert not result.ready
        for t in range(1, detector.config.window):
            result = fleet.step(np.stack([dataset.test[t % len(dataset.test)]] * 2))
        assert result.ready
        assert np.isfinite(result.scores).all()

    def test_global_mode_reports_uniform_thresholds(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        result = fleet.step(np.stack([dataset.test[0]] * 2))
        assert fleet.threshold_mode == "global"
        assert fleet.adaptive_pot is None
        assert fleet.threshold_refits == 0
        np.testing.assert_array_equal(
            result.thresholds, np.full(result.scores.shape, fleet.threshold)
        )

    def test_threshold_mode_is_validated(self, fitted):
        detector, _ = fitted
        with pytest.raises(ValueError):
            FleetManager(detector, num_shards=2, threshold_mode="adaptive")

    def test_run_collects_alerts(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2,
                             alert_policy=AlertPolicy(min_consecutive=1, cooldown=0))
        exposures = np.stack([np.stack([row] * 2) for row in dataset.test[:10]])
        results = fleet.run(exposures)
        assert len(results) == 10
        assert all(r.scores.shape == (2, detector.model.num_variates) for r in results)


class TestPerStarFleet:
    """threshold_mode='per_star': adaptive thresholds as a fleet capability."""

    @staticmethod
    def scalar_references(detector, num_stars, refit_interval=32):
        """One scalar IncrementalPOT per star, per-variate calibration tiled."""
        train = np.asarray(detector.train_scores_)
        num_variates = train.shape[1]
        return [
            IncrementalPOT(
                q=detector.config.pot_q,
                level=detector.config.pot_level,
                refit_interval=refit_interval,
            ).fit(train[:, star % num_variates])
            for star in range(num_stars)
        ]

    def test_per_star_ticks_match_scalar_pot_instances(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, threshold_mode="per_star")
        refs = self.scalar_references(detector, fleet.num_stars)
        np.testing.assert_array_equal(
            fleet.adaptive_pot.thresholds, [ref.threshold for ref in refs]
        )
        for t in range(15):
            result = fleet.step(np.stack([dataset.test[t]] * 2))
            # Result thresholds are the pre-update snapshot: the values the
            # tick's labels were decided against.
            np.testing.assert_array_equal(
                result.thresholds.ravel(), [ref.threshold for ref in refs]
            )
            expected = np.array(
                [ref.update(float(s)) for ref, s in zip(refs, result.scores.ravel())],
                dtype=np.int64,
            )
            np.testing.assert_array_equal(result.labels.ravel(), expected)

    def test_alerts_record_the_per_star_threshold_that_fired(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(
            detector, num_shards=2, threshold_mode="per_star",
            alert_policy=AlertPolicy(min_consecutive=1, cooldown=0),
        )
        spike = np.stack([dataset.test[0]] * 2) + 50.0
        result = fleet.step(spike)
        assert result.alerts
        thresholds = result.thresholds
        for alert in result.alerts:
            assert alert.threshold == thresholds[alert.shard, alert.variate]

    def test_swap_model_carries_adaptive_state(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, threshold_mode="per_star")
        for t in range(10):
            fleet.step(np.stack([dataset.test[t]] * 2))
        pot = fleet.adaptive_pot
        thresholds = pot.thresholds.copy()
        observations = pot.num_observations.copy()
        fleet.swap_model(detector)
        assert fleet.adaptive_pot is pot
        np.testing.assert_array_equal(fleet.adaptive_pot.thresholds, thresholds)
        np.testing.assert_array_equal(fleet.adaptive_pot.num_observations, observations)
        # And the stream keeps adapting after the swap.
        result = fleet.step(np.stack([dataset.test[10]] * 2))
        assert result.ready
        assert (fleet.adaptive_pot.num_observations == observations + 1).all()

    def test_threshold_state_round_trip_between_fleets(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, threshold_mode="per_star")
        for t in range(10):
            fleet.step(np.stack([dataset.test[t]] * 2))
        state = fleet.threshold_state()
        other = FleetManager(detector, num_shards=2)
        assert other.threshold_state() is None
        other.load_threshold_state(state)
        assert other.threshold_mode == "per_star"
        np.testing.assert_array_equal(
            other.adaptive_pot.thresholds, fleet.adaptive_pot.thresholds
        )
        wrong = FleetManager(detector, num_shards=3)
        with pytest.raises(ValueError):
            wrong.load_threshold_state(state)

    def test_cold_start_reports_calibration_thresholds(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, seed_context=False,
                             threshold_mode="per_star")
        calibration = fleet.adaptive_pot.thresholds.copy()
        result = fleet.step(np.stack([dataset.test[0]] * 2))
        assert not result.ready
        np.testing.assert_array_equal(result.thresholds.ravel(), calibration)
        # Warm-up ticks must not advance the POT (no scores were emitted).
        np.testing.assert_array_equal(fleet.adaptive_pot.thresholds, calibration)


class TestStreamingService:
    def test_submit_drain_and_stats(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        service = StreamingService(fleet, max_queue=8)
        for t in range(6):
            assert service.submit(np.stack([dataset.test[t]] * 2))
        results = service.drain()
        assert len(results) == 6
        stats = service.stats()
        assert stats.processed_steps == 6
        assert stats.dropped_steps == 0
        assert stats.p99_latency_ms >= stats.p50_latency_ms >= 0.0
        assert stats.stars_per_second > 0
        assert "stars/s" in stats.format()

    def test_submit_copies_rows(self, fitted):
        # A producer reusing its exposure buffer must not corrupt queued
        # entries awaiting a deferred drain.
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        reference = StreamingService(FleetManager(detector, num_shards=2))
        for t in range(3):
            reference.submit(np.stack([dataset.test[t]] * 2))
        expected = [r.scores.copy() for r in reference.drain()]

        service = StreamingService(fleet)
        shared = np.empty((2, detector.model.num_variates))
        for t in range(3):
            shared[:] = dataset.test[t]
            service.submit(shared)  # same buffer every time
        results = service.drain()
        for result, want in zip(results, expected):
            np.testing.assert_allclose(result.scores, want, rtol=0, atol=1e-10)

    def test_backpressure_sheds_load(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        service = StreamingService(fleet, max_queue=3)
        rows = np.stack([dataset.test[0]] * 2)
        accepted = [service.submit(rows) for _ in range(5)]
        assert accepted == [True, True, True, False, False]
        assert service.stats().dropped_steps == 2
        assert service.under_pressure
        service.drain()
        assert service.queue_depth == 0

    def test_run_processes_whole_stream(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        service = StreamingService(fleet)
        exposures = [np.stack([row] * 2) for row in dataset.test[:5]]
        results = service.run(exposures)
        assert len(results) == 5
        assert service.stats().processed_steps == 5

    def test_throughput_counts_variates_of_a_bare_stream(self, fitted):
        # Wrapping a StreamingDetector (no num_stars property) must fall back
        # to the scored variate count, not to 1 star.
        detector, dataset = fitted
        service = StreamingService(StreamingDetector(detector))
        for t in range(4):
            service.submit(dataset.test[t])
        service.drain()
        stats = service.stats()
        mean_seconds = stats.mean_latency_ms / 1e3
        expected = detector.model.num_variates / mean_seconds
        assert stats.stars_per_second == pytest.approx(expected)

    def test_single_latency_sample_reports_itself(self, fitted):
        detector, dataset = fitted
        service = StreamingService(FleetManager(detector, num_shards=2))
        service.submit(np.stack([dataset.test[0]] * 2))
        service.drain()
        stats = service.stats()
        assert stats.p50_latency_ms == stats.p99_latency_ms == pytest.approx(
            stats.mean_latency_ms
        )

    def test_stats_report_threshold_refits(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2, threshold_mode="per_star")
        service = StreamingService(fleet)
        for t in range(5):
            service.submit(np.stack([dataset.test[t]] * 2))
        service.drain()
        stats = service.stats()
        assert stats.threshold_refits == fleet.adaptive_pot.total_refits
        assert "refits=" in stats.format()

    def test_run_returns_only_its_own_results(self, fitted):
        detector, dataset = fitted
        fleet = FleetManager(detector, num_shards=2)
        service = StreamingService(fleet)
        rows = np.stack([dataset.test[0]] * 2)
        service.submit(rows)
        service.drain()
        second = service.run([np.stack([row] * 2) for row in dataset.test[1:4]])
        assert len(second) == 3
        assert service.stats().processed_steps == 4
