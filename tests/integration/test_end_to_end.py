"""Integration tests: the full pipeline from data generation to evaluation."""

import numpy as np
import pytest

from repro.core import AeroConfig, AeroDetector, build_variant
from repro.data import SyntheticConfig, generate_synthetic, load_astroset
from repro.evaluation import best_f1_evaluation
from repro.experiments import PROFILES, run_method_on_dataset, load_dataset

TINY = PROFILES["tiny"]

FAST_CONFIG = AeroConfig.fast(window=24, short_window=8).scaled(
    max_epochs_stage1=8, max_epochs_stage2=5, learning_rate=5e-3,
    d_model=8, num_heads=2, train_stride=4, batch_size=8,
)


def concurrent_noise_dataset(seed=31):
    """A dataset with a prominent anomaly and strong concurrent noise."""
    config = SyntheticConfig(
        num_variates=8,
        train_length=220,
        test_length=220,
        num_noise_events=4,
        num_anomaly_segments=2,
        noise_variate_fraction=0.75,
        seed=seed,
    )
    return generate_synthetic(config)


class TestAeroEndToEnd:
    @pytest.fixture(scope="class")
    def trained(self):
        dataset = concurrent_noise_dataset()
        detector = AeroDetector(FAST_CONFIG)
        detector.fit(dataset.train)
        report = detector.evaluate(dataset.test, dataset.test_labels)
        return dataset, detector, report

    def test_training_converges(self, trained):
        _, detector, _ = trained
        history = detector.history
        assert history.stage1_losses[-1] < history.stage1_losses[0]

    def test_anomalies_score_above_normal_points(self, trained):
        dataset, _, report = trained
        scores = report.test_scores
        anomaly = dataset.test_labels.astype(bool)
        normal = ~anomaly & ~dataset.test_noise_mask.astype(bool)
        assert scores[anomaly].mean() > scores[normal].mean()

    def test_noise_module_suppresses_concurrent_noise(self, trained):
        """The central claim of the paper: stage 2 lowers scores on noise points."""
        dataset, detector, report = trained
        noise_only = dataset.test_noise_mask.astype(bool) & ~dataset.test_labels.astype(bool)
        # Temporal-only scores for comparison.
        noise_module = detector.model.noise
        detector.model.noise = None
        try:
            stage1_scores = detector.score(dataset.test)
        finally:
            detector.model.noise = noise_module
        full_scores = report.test_scores
        assert full_scores[noise_only].mean() < stage1_scores[noise_only].mean()

    def test_detection_quality_is_reasonable(self, trained):
        dataset, _, report = trained
        best, _ = best_f1_evaluation(report.test_scores, dataset.test_labels)
        assert best.f1 > 0.3

    def test_pot_labels_shape_and_type(self, trained):
        dataset, detector, _ = trained
        labels = detector.detect(dataset.test)
        assert labels.shape == dataset.test.shape
        assert labels.dtype == np.int64


class TestVariantComparison:
    def test_full_model_beats_or_matches_multivariate_input_variant(self):
        dataset = concurrent_noise_dataset(seed=37)
        full = AeroDetector(FAST_CONFIG)
        full.fit(dataset.train)
        full_best, _ = best_f1_evaluation(full.score(dataset.test), dataset.test_labels)

        variant = build_variant("no_univariate_input", FAST_CONFIG)
        variant.fit(dataset.train)
        variant_best, _ = best_f1_evaluation(variant.score(dataset.test), dataset.test_labels)
        assert full_best.f1 >= variant_best.f1 - 0.15


class TestRealWorldPipeline:
    def test_gwac_dataset_with_aero(self):
        dataset = load_astroset("AstrosetLow", scale=0.04)
        detector = AeroDetector(FAST_CONFIG)
        detector.fit(dataset.train, dataset.train_timestamps)
        report = detector.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps)
        assert 0.0 <= report.outcome.result.f1 <= 1.0
        assert np.isfinite(report.test_scores).all()

    def test_harness_runs_statistical_method_on_real_dataset(self):
        dataset = load_dataset("AstrosetMiddle", TINY)
        row = run_method_on_dataset("SR", dataset, TINY)
        assert row["dataset"] == "AstrosetMiddle"
        assert 0.0 <= row["f1"] <= 1.0
