"""DriftMonitor: streaming sketches, divergence, hysteresis, serving wiring.

The load-bearing acceptance test lives at the bottom: a drift-faulted
survey night (``apply_baseline_drift``) served through a monitored fleet
trips the monitor within a bounded number of ticks, while the *matching*
quiet night — same seed, same train/calibration data, same detector, same
monitor settings — never trips at all.
"""

import numpy as np
import pytest

from conftest import OBS_DETECTOR

from repro import AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import DriftMonitor, FlightRecorder, calibrate_drift_monitor
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario


def _reference(rng, size=512):
    return rng.normal(0.0, 1.0, size=size)


def _quick_monitor(**overrides):
    """A monitor tuned to react within a handful of ticks (unit tests)."""
    settings = dict(
        halflife=8.0, num_bins=4, check_interval=2, trip_after=2, clear_after=2,
        min_observations=8, warmup_ticks=0, psi_trip=0.5, psi_clear=0.3,
        ks_trip=0.5, ks_clear=0.3,
    )
    settings.update(overrides)
    return DriftMonitor(**settings)


# ---------------------------------------------------------------------------
# construction + fit validation
# ---------------------------------------------------------------------------
def test_constructor_rejects_bad_settings():
    for bad in (
        dict(halflife=0.0),
        dict(num_bins=1),
        dict(quantiles=()),
        dict(quantiles=(0.5, 1.0)),
        dict(psi_trip=0.1, psi_clear=0.2),
        dict(ks_trip=0.1, ks_clear=0.2),
        dict(check_interval=0),
        dict(trip_after=0),
        dict(clear_after=0),
        dict(min_observations=0),
        dict(warmup_ticks=-1),
    ):
        with pytest.raises(ValueError):
            DriftMonitor(**bad)


def test_fit_validates_reference_shapes():
    rng = np.random.default_rng(0)
    monitor = DriftMonitor()
    with pytest.raises(ValueError, match="num_stars"):
        monitor.fit(_reference(rng))                       # 1-D needs num_stars
    with pytest.raises(ValueError, match="1-D .* or 2-D"):
        monitor.fit(np.zeros((2, 3, 4)))
    with pytest.raises(ValueError, match="finite reference scores"):
        monitor.fit(rng.normal(size=8), num_stars=4)       # too few points
    with pytest.raises(ValueError, match="does not match reference rows"):
        monitor.fit(rng.normal(size=(3, 200)), num_stars=4)
    with pytest.raises(RuntimeError, match="fitted"):
        DriftMonitor().update(np.zeros(4))
    with pytest.raises(RuntimeError, match="fitted"):
        DriftMonitor().divergence()


def test_fit_snapshots_per_star_reference():
    rng = np.random.default_rng(1)
    monitor = DriftMonitor(num_bins=8).fit(_reference(rng), num_stars=3)
    assert monitor.num_stars == 3
    assert monitor.ref_edges.shape == (3, 7)
    assert monitor.ref_probs.shape == (3, 8)
    np.testing.assert_allclose(monitor.ref_probs.sum(axis=1), 1.0)
    # Equal-mass bins on a continuous sample: every bin close to 1/8.
    np.testing.assert_allclose(monitor.ref_probs, 1.0 / 8.0, atol=0.01)
    # A shared 1-D reference broadcasts identically to every star.
    assert np.array_equal(monitor.ref_edges[0], monitor.ref_edges[2])
    with pytest.raises(ValueError, match="one score per star"):
        monitor.update(np.zeros(5))


# ---------------------------------------------------------------------------
# streaming sketches
# ---------------------------------------------------------------------------
def test_p2_quantiles_track_numpy_quantiles():
    rng = np.random.default_rng(7)
    monitor = DriftMonitor(
        quantiles=(0.5, 0.9, 0.99), min_observations=16, warmup_ticks=0
    ).fit(_reference(rng), num_stars=2)
    samples = rng.normal(0.0, 1.0, size=(4000, 2))
    for row in samples:
        monitor.update(row)
    live = monitor.live_quantiles                      # (Q, K)
    expected = np.quantile(samples, (0.5, 0.9, 0.99), axis=0)
    # P² is an approximation; on 4000 N(0,1) draws it lands within a few
    # percent of the exact empirical quantiles even at the 0.99 tail.
    np.testing.assert_allclose(live, expected, atol=0.15)
    assert np.all(np.abs(monitor.live_mean) < 0.1)
    np.testing.assert_allclose(monitor.live_std, 1.0, atol=0.15)


def test_nan_scores_are_per_star_no_ops():
    rng = np.random.default_rng(3)
    monitor = _quick_monitor().fit(_reference(rng), num_stars=3)
    for _ in range(20):
        monitor.update(rng.normal(size=3))
    before_obs = monitor.num_observations.copy()
    before_mean = monitor.live_mean.copy()
    monitor.update([np.nan, 0.5, np.nan])              # only star 1 observes
    assert np.array_equal(monitor.num_observations, before_obs + [0, 1, 0])
    assert monitor.live_mean[0] == before_mean[0]
    assert monitor.live_mean[2] == before_mean[2]
    assert monitor.live_mean[1] != before_mean[1]
    # An all-NaN tick advances nothing but the tick counter.
    all_before = monitor.num_observations.copy()
    monitor.update(np.full(3, np.nan))
    assert np.array_equal(monitor.num_observations, all_before)


def test_warmup_ticks_discard_the_seam():
    rng = np.random.default_rng(4)
    monitor = _quick_monitor(warmup_ticks=10).fit(_reference(rng), num_stars=2)
    for _ in range(10):                                # transient junk
        assert monitor.update([50.0, -50.0]) == 0
    assert monitor.num_observations.sum() == 0        # nothing ingested
    for _ in range(12):
        monitor.update(rng.normal(size=2))
    assert np.array_equal(monitor.num_observations, [12, 12])
    # The +/-50 junk left no residue in the sketches: the EW means sit on
    # the N(0,1) stream, nowhere near the discarded transient.
    assert np.all(np.abs(monitor.live_mean) < 2.0)


# ---------------------------------------------------------------------------
# divergence + hysteresis
# ---------------------------------------------------------------------------
def test_shifted_star_trips_and_clears_with_hysteresis():
    rng = np.random.default_rng(5)
    registry = MetricsRegistry()
    with use_registry(registry):
        monitor = _quick_monitor()
    monitor.fit(_reference(rng), num_stars=2)
    # Star 1 jumps four sigmas; star 0 keeps sampling the reference.
    tick = 0
    while not monitor.tripped.any():
        monitor.update([rng.normal(), 4.0 + rng.normal()])
        tick += 1
        assert tick < 64, "shifted star failed to trip"
    assert np.array_equal(monitor.tripped, [False, True])
    assert monitor.tripped_stars == 1
    assert monitor.trips_total == 1
    assert monitor.first_trip_step[1] == tick
    assert monitor.first_trip_step[0] == -1
    psi, ks = monitor.divergence()
    assert psi[1] > monitor.psi_trip or ks[1] > monitor.ks_trip
    verdict = monitor.last_verdict
    assert verdict is not None and "worst star=1" in verdict.format()
    # Back on the reference distribution: the short halflife washes the
    # shifted mass out and the star clears after clear_after passing checks.
    while monitor.tripped.any():
        monitor.update(rng.normal(size=2))
        tick += 1
        assert tick < 256, "shifted star failed to clear"
    assert monitor.tripped_stars == 0
    assert monitor.trips_total == 1                    # clearing is not a trip
    assert monitor.first_trip_step[1] > 0              # first trip is sticky
    assert registry.get("drift_trips_total").value == 1
    assert registry.get("drift_tripped_stars").value == 0
    assert registry.get("drift_checks_total").value > 0
    evidence = monitor.snapshot()
    assert set(evidence) >= {"psi", "ks", "tripped", "first_trip_step"}


def test_quiet_sampling_noise_stays_below_default_bounds():
    rng = np.random.default_rng(6)
    monitor = DriftMonitor(warmup_ticks=0).fit(_reference(rng), num_stars=4)
    for _ in range(600):
        monitor.update(rng.normal(size=4))
    assert not monitor.tripped.any()
    psi, ks = monitor.divergence()
    assert psi.max() < monitor.psi_trip
    assert ks.max() < monitor.ks_trip


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def test_state_dict_round_trips(tmp_path):
    rng = np.random.default_rng(8)
    monitor = DriftMonitor(
        halflife=17.0, quantiles=(0.25, 0.75), num_bins=6, psi_trip=0.4,
        check_interval=3, min_observations=11, warmup_ticks=5,
    ).fit(rng.normal(size=(3, 300)))
    state = monitor.state_dict()
    restored = DriftMonitor.from_state_dict(state)
    assert restored.halflife == monitor.halflife
    assert restored.quantiles == monitor.quantiles
    assert restored.num_bins == monitor.num_bins
    assert restored.warmup_ticks == monitor.warmup_ticks
    assert restored.min_observations == monitor.min_observations
    for name in ("ref_edges", "ref_probs", "ref_quantiles", "ref_mean", "ref_std"):
        np.testing.assert_array_equal(getattr(restored, name), getattr(monitor, name))
    # Live sketches start fresh: only the calibration reference travels.
    assert restored.num_observations.sum() == 0
    # And through an npz on disk, as the registry sidecar stores it.
    path = tmp_path / "drift.npz"
    np.savez_compressed(path, **state)
    with np.load(path) as archive:
        from_disk = DriftMonitor.from_state_dict({k: archive[k] for k in archive.files})
    np.testing.assert_array_equal(from_disk.ref_probs, monitor.ref_probs)


def test_from_state_dict_validates():
    rng = np.random.default_rng(9)
    state = DriftMonitor().fit(_reference(rng), num_stars=2).state_dict()
    broken = dict(state)
    del broken["ref_probs"]
    with pytest.raises(ValueError, match="missing keys"):
        DriftMonitor.from_state_dict(broken)
    mismatched = dict(state)
    mismatched["ref_edges"] = state["ref_edges"][:1]
    with pytest.raises(ValueError, match="disagree on the star count"):
        DriftMonitor.from_state_dict(mismatched)
    wrong_bins = dict(state)
    wrong_bins["num_bins"] = np.asarray(4, dtype=np.int64)
    with pytest.raises(ValueError, match="bin geometry"):
        DriftMonitor.from_state_dict(wrong_bins)


def test_calibrate_tiles_variate_references_across_shards():
    rng = np.random.default_rng(10)
    cal = rng.normal(size=(300, 3)) * np.array([1.0, 2.0, 3.0])  # (T, N)
    monitor = calibrate_drift_monitor(cal, num_stars=6)          # 2 shards x 3
    assert monitor.num_stars == 6
    # Star shard*N + v carries variate v's reference, both shards alike.
    for v in range(3):
        np.testing.assert_array_equal(monitor.ref_edges[v], monitor.ref_edges[3 + v])
    assert not np.array_equal(monitor.ref_edges[0], monitor.ref_edges[1])
    # A star count that is no multiple of N falls back to one pooled reference.
    pooled = calibrate_drift_monitor(cal, num_stars=5)
    assert pooled.num_stars == 5
    np.testing.assert_array_equal(pooled.ref_edges[0], pooled.ref_edges[4])


# ---------------------------------------------------------------------------
# the acceptance criterion: drifted night trips, matching quiet night doesn't
# ---------------------------------------------------------------------------
DRIFT_BASE = dict(
    seed=11, train_length=240, calibration_length=160, night_length=200,
    num_events=0, num_dropouts=0, nan_fraction=0.0,
    num_duplicate_frames=0, num_reordered_frames=0,
)

#: Frozen serving-monitor settings for the drift night.  ``warmup_ticks=48``
#: covers the seam transient (2x the detector window: a freshly started
#: fleet's first windows straddle the gap between seeded context and the
#: night, and sinusoidal stars jump phase across it); ``psi_trip=1.0`` sits
#: ~2x above the quiet night's worst sustained PSI (~0.6 — genuine mild
#: night-vs-calibration nonstationarity, not noise).
DRIFT_MONITOR = dict(
    halflife=48, check_interval=4, min_observations=64, warmup_ticks=48,
    psi_trip=1.0, psi_clear=0.30, ks_trip=0.60, ks_clear=0.20,
    trip_after=2, clear_after=8,
)

#: Every trip must land inside the night; in practice the drifted night
#: trips around tick ~120 of 200 with the settings above.
MAX_TRIP_TICK = 180


@pytest.fixture(scope="module")
def drift_night():
    """Quiet and drift-faulted variants of one night, plus a shared detector.

    Fault knobs are applied after the pre-night data is drawn, so both
    scenarios share bit-identical train and calibration stretches — one
    detector and one reference serve both, and the *only* difference
    between the runs is the injected baseline drift.
    """
    quiet = build_scenario(ScenarioConfig(num_drift_stars=0, **DRIFT_BASE))
    drifted = build_scenario(
        ScenarioConfig(num_drift_stars=2, drift_amplitude=1.0, **DRIFT_BASE)
    )
    assert np.array_equal(quiet.train, drifted.train)
    assert np.array_equal(quiet.calibration, drifted.calibration)
    detector = AeroDetector(OBS_DETECTOR)
    detector.fit(quiet.train, quiet.train_timestamps)
    cal_scores = detector.score(quiet.calibration, quiet.calibration_timestamps)
    threshold = pot_threshold(cal_scores, q=5e-3)
    return quiet, drifted, detector, cal_scores, threshold


def _serve_night(scenario, detector, cal_scores, threshold, make_obs_fleet):
    monitor = calibrate_drift_monitor(
        cal_scores, num_stars=scenario.num_stars, **DRIFT_MONITOR
    )
    fleet = make_obs_fleet(
        detector, scenario, threshold,
        drift_monitor=monitor, recorder=FlightRecorder(capacity=256),
    )
    ReplayHarness(fleet, scenario).run()
    return fleet


def test_drifted_night_trips_quiet_night_does_not(drift_night, make_obs_fleet):
    quiet, drifted, detector, cal_scores, threshold = drift_night

    served_quiet = _serve_night(quiet, detector, cal_scores, threshold, make_obs_fleet)
    quiet_monitor = served_quiet.drift_monitor
    assert quiet_monitor.trips_total == 0
    assert not quiet_monitor.tripped.any()
    assert (quiet_monitor.first_trip_step == -1).all()
    assert served_quiet.recorder.records == []
    assert served_quiet.health().drift_tripped_stars == 0

    served = _serve_night(drifted, detector, cal_scores, threshold, make_obs_fleet)
    monitor = served.drift_monitor
    assert monitor.trips_total >= 1
    tripped = np.flatnonzero(monitor.first_trip_step >= 0)
    assert tripped.size >= 1
    # Bounded detection latency: every trip lands well inside the night.
    assert int(monitor.first_trip_step[tripped].max()) <= MAX_TRIP_TICK
    # The detector is multivariate per shard, so injected drift bleeds into
    # shard-mates' scores; what must hold is that a drift-faulted shard is
    # among the tripped ones.
    num_variates = drifted.config.num_variates
    faulted_shards = {
        fault.star // num_variates for fault in drifted.faults if fault.kind == "drift"
    }
    tripped_shards = {int(star) // num_variates for star in tripped}
    assert tripped_shards & faulted_shards
    assert served.health().drift_tripped_stars == monitor.tripped_stars
    # The trip froze the flight recorder exactly once (cooldown absorbs
    # follow-on trips of the same incident).
    reasons = [record.reason for record in served.recorder.records]
    assert reasons == ["drift_trip"]


def test_drift_monitoring_is_bit_transparent(drift_night, make_obs_fleet):
    """Scores, thresholds, labels and alerts are identical with the full
    model-quality stack attached (monitor + recorder) or absent."""
    _, drifted, detector, cal_scores, threshold = drift_night
    plain = make_obs_fleet(detector, drifted, threshold)
    _, trace_off = ReplayHarness(plain, drifted).run()
    monitored = _serve_night(drifted, detector, cal_scores, threshold, make_obs_fleet)
    assert monitored.drift_monitor.trips_total >= 1    # the stack actually ran
    _, trace_on = ReplayHarness(
        make_obs_fleet(
            detector, drifted, threshold,
            drift_monitor=calibrate_drift_monitor(
                cal_scores, num_stars=drifted.num_stars, **DRIFT_MONITOR
            ),
            recorder=FlightRecorder(capacity=256),
        ),
        drifted,
    ).run()
    assert np.array_equal(trace_off.scores, trace_on.scores, equal_nan=True)
    assert np.array_equal(trace_off.thresholds, trace_on.thresholds, equal_nan=True)
    assert np.array_equal(trace_off.labels, trace_on.labels)
    assert np.array_equal(trace_off.alert_seqs, trace_on.alert_seqs)
    assert np.array_equal(trace_off.alert_stars, trace_on.alert_stars)
    assert np.array_equal(trace_off.alert_scores, trace_on.alert_scores)


def test_fleet_rejects_mismatched_monitor(drift_night, make_obs_fleet):
    quiet, _, detector, cal_scores, threshold = drift_night
    rng = np.random.default_rng(12)
    small = DriftMonitor().fit(rng.normal(size=300), num_stars=3)
    with pytest.raises(ValueError, match="drift monitor covers 3 stars"):
        make_obs_fleet(detector, quiet, threshold, drift_monitor=small)


def test_fleet_drift_state_round_trip(drift_night, make_obs_fleet):
    quiet, _, detector, cal_scores, threshold = drift_night
    monitor = calibrate_drift_monitor(
        cal_scores, num_stars=quiet.num_stars, **DRIFT_MONITOR
    )
    fleet = make_obs_fleet(detector, quiet, threshold, drift_monitor=monitor)
    state = fleet.drift_state()
    fresh = make_obs_fleet(detector, quiet, threshold)
    assert fresh.drift_state() is None
    fresh.load_drift_state(state)
    np.testing.assert_array_equal(
        fresh.drift_monitor.ref_probs, monitor.ref_probs
    )
    with pytest.raises(ValueError, match="fleet serves"):
        rng = np.random.default_rng(13)
        wrong = DriftMonitor().fit(rng.normal(size=300), num_stars=5)
        fresh.load_drift_state(wrong.state_dict())
