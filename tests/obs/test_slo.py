"""SLO windows: rolling good/bad accounting, burn rates, serving wiring."""

import numpy as np
import pytest

from repro.obs import SLO, FlightRecorder, SLOMonitor
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.streaming import StreamingService


class _StubResult:
    def __init__(self, num_stars=8, alerts=()):
        self.scores = np.zeros(num_stars)
        self.alerts = alerts


class _StubFleet:
    def __init__(self, num_stars=8):
        self._num_stars = num_stars
        self.threshold_refits = 0
        self.threshold_refit_failures = 0

    def step(self, rows, timestamp=None):
        return _StubResult(self._num_stars)


# ---------------------------------------------------------------------------
# a single SLO window
# ---------------------------------------------------------------------------
def test_empty_window_is_compliant_and_not_burning():
    slo = SLO("latency", objective=0.99, window=16)
    assert slo.events == 0
    assert slo.compliance == 1.0
    assert slo.burn_rate == 0.0
    assert not slo.breached
    status = slo.status()
    assert status.events == 0 and not status.breached
    assert "slo[latency] ok" in str(status)


def test_burn_rate_is_bad_fraction_over_budget():
    slo = SLO("ingest", objective=0.99, window=100)
    for _ in range(90):
        slo.record(good=1)
    for _ in range(10):
        slo.record(bad=1)
    # 10% bad against a 1% budget: burning 10x.
    assert slo.compliance == pytest.approx(0.90)
    assert slo.burn_rate == pytest.approx(10.0)
    assert slo.breached
    assert "BREACH" in str(slo.status())
    assert slo.status().to_dict()["burn_rate"] == pytest.approx(10.0)


def test_window_evicts_oldest_events():
    slo = SLO("x", objective=0.5, window=4)
    for _ in range(4):
        slo.record(bad=1)
    assert slo.compliance == 0.0
    for _ in range(4):
        slo.record(good=1)                 # pushes every bad event out
    assert slo.events == 4
    assert slo.compliance == 1.0
    assert not slo.breached
    # Batched counts evict as one entry each.
    slo.record(good=10, bad=10)
    assert slo.events == 23                # 3 singles + one (10, 10) batch
    assert slo.compliance == pytest.approx(13 / 23)


def test_slo_validation():
    for objective in (0.0, 1.0, -1.0):
        with pytest.raises(ValueError):
            SLO("x", objective=objective)
    with pytest.raises(ValueError):
        SLO("x", objective=0.5, window=0)
    with pytest.raises(ValueError):
        SLO("x", objective=0.5).record(good=-1)


# ---------------------------------------------------------------------------
# the serving monitor
# ---------------------------------------------------------------------------
def test_monitor_validation():
    with pytest.raises(ValueError):
        SLOMonitor(latency_budget_ms=0.0)
    with pytest.raises(ValueError):
        SLOMonitor(alert_objective_per_1k=1000.0)
    with pytest.raises(ValueError):
        SLOMonitor(burn_alert=0.0)


def test_observe_tick_feeds_latency_and_alert_windows():
    monitor = SLOMonitor(latency_budget_ms=100.0, window=64)
    alerts = (object(), object())
    monitor.observe_tick(0.050, _StubResult(num_stars=10, alerts=alerts))
    monitor.observe_tick(0.500, _StubResult(num_stars=10))
    latency = monitor.slos[SLOMonitor.TICK_LATENCY]
    assert latency.events == 2
    assert latency.compliance == pytest.approx(0.5)
    alert_rate = monitor.slos[SLOMonitor.ALERT_RATE]
    assert alert_rate.events == 20
    assert alert_rate.compliance == pytest.approx(18 / 20)
    summary = monitor.summary()
    assert summary[SLOMonitor.TICK_LATENCY]["events"] == 2
    assert SLOMonitor.TICK_LATENCY in monitor.format()


def test_refit_counters_are_cumulative_deltas():
    monitor = SLOMonitor()
    monitor.observe_tick(0.001, refits=3, refit_failures=0)
    monitor.observe_tick(0.001, refits=5, refit_failures=1)
    monitor.observe_tick(0.001, refits=5, refit_failures=1)   # no change
    refit = monitor.slos[SLOMonitor.POT_REFIT]
    assert refit.events == 6                # 5 good refits + 1 failure
    assert refit.compliance == pytest.approx(5 / 6)
    monitor.record_refit_failure()
    assert monitor.slos[SLOMonitor.POT_REFIT].events == 7


def test_burning_names_fast_burning_slos():
    monitor = SLOMonitor(latency_budget_ms=1.0, burn_alert=4.0, window=32)
    assert monitor.burning() == []
    for _ in range(8):
        monitor.observe_tick(0.5)           # 500 ms against a 1 ms budget
    assert SLOMonitor.TICK_LATENCY in monitor.burning()
    monitor.record_ingest(accepted=99, dropped=0)
    assert SLOMonitor.INGEST not in monitor.burning()
    monitor.record_ingest(accepted=0, dropped=50)
    assert SLOMonitor.INGEST in monitor.burning()


def test_compliance_and_burn_export_as_labelled_gauges():
    registry = MetricsRegistry()
    with use_registry(registry):
        monitor = SLOMonitor(latency_budget_ms=10.0)
    monitor.observe_tick(0.500)             # blown budget: bad tick
    samples = parse_prometheus(render_prometheus(registry))
    key = ("slo_compliance", (("slo", SLOMonitor.TICK_LATENCY),))
    assert samples[key] == 0.0
    assert samples[
        ("slo_burn_rate", (("slo", SLOMonitor.TICK_LATENCY),))
    ] == pytest.approx(100.0)
    assert samples[("slo_breached", (("slo", SLOMonitor.TICK_LATENCY),))] == 1.0
    # Untouched SLOs still export their (compliant) resting state.
    assert samples[("slo_compliance", (("slo", SLOMonitor.INGEST),))] == 1.0


# ---------------------------------------------------------------------------
# wiring through StreamingService
# ---------------------------------------------------------------------------
def test_service_feeds_ingest_and_tick_windows():
    monitor = SLOMonitor(latency_budget_ms=1e4)
    service = StreamingService(_StubFleet(), max_queue=2, slo=monitor)
    rows = np.zeros((2, 4))
    assert service.submit(rows) and service.submit(rows)
    assert not service.submit(rows)         # queue full: dropped
    ingest = monitor.slos[SLOMonitor.INGEST]
    assert ingest.events == 3
    assert ingest.compliance == pytest.approx(2 / 3)
    service.drain()
    assert monitor.slos[SLOMonitor.TICK_LATENCY].events == 2
    assert monitor.slos[SLOMonitor.ALERT_RATE].events == 16
    service.submit(rows)                    # accepted: event 4
    service.shed()                          # then shed again: event 5
    assert monitor.slos[SLOMonitor.INGEST].events == 5
    assert monitor.slos[SLOMonitor.INGEST].compliance == pytest.approx(3 / 5)


def test_slo_burn_triggers_the_fleet_flight_recorder():
    class _RecordingFleet(_StubFleet):
        def __init__(self):
            super().__init__()
            self.recorder = FlightRecorder(capacity=8, cooldown=0)

        def step(self, rows, timestamp=None):
            result = _StubResult(self._num_stars)
            result.step = 0
            result.threshold = 1.0
            result.labels = np.zeros(self._num_stars, dtype=np.int64)
            self.recorder.record(rows, timestamp, result)
            return result

    fleet = _RecordingFleet()
    # An impossible latency budget: the very first drained tick fast-burns.
    monitor = SLOMonitor(latency_budget_ms=1e-6, burn_alert=4.0)
    service = StreamingService(fleet, max_queue=4, slo=monitor)
    service.submit(np.zeros((2, 4)))
    service.drain()
    assert [record.reason for record in fleet.recorder.records] == ["slo_burn"]
