"""Fixtures for the observability suite.

The replay fixtures mirror ``tests/simulation`` but on a deliberately
smaller night and a shorter fit — this suite checks telemetry transparency
(bit-equality on vs off), not detection quality, so the cheapest scenario
that exercises gaps, dropouts and alerts is the right one.
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import metrics as metrics_module
from repro.obs import tracing as tracing_module
from repro.simulation import ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager

OBS_SEED = 11

OBS_SCENARIO = ScenarioConfig(
    seed=OBS_SEED,
    train_length=240,
    calibration_length=120,
    night_length=140,
    num_events=3,
)

OBS_DETECTOR = AeroConfig.fast(window=24, short_window=8).scaled(
    max_epochs_stage1=2, max_epochs_stage2=1, learning_rate=5e-3,
    d_model=16, num_heads=2, train_stride=3, batch_size=16,
)


@pytest.fixture(autouse=True)
def _restore_telemetry_defaults():
    """Leave the process-wide default registry/tracer as each test found them."""
    registry = metrics_module.get_registry()
    tracer = tracing_module.get_tracer()
    yield
    metrics_module.set_default_registry(
        None if registry is metrics_module.NULL_REGISTRY else registry
    )
    tracing_module.set_default_tracer(
        None if tracer is tracing_module.NULL_TRACER else tracer
    )


@pytest.fixture(scope="session")
def obs_night():
    """``(scenario, detector, threshold)`` for a small telemetry-test night."""
    scenario = build_scenario(OBS_SCENARIO)
    detector = AeroDetector(OBS_DETECTOR)
    detector.fit(scenario.train, scenario.train_timestamps)
    threshold = pot_threshold(
        detector.score(scenario.calibration, scenario.calibration_timestamps), q=5e-3
    )
    assert np.isfinite(threshold)
    return scenario, detector, threshold


@pytest.fixture(scope="session")
def make_obs_fleet():
    """Factory: fresh fleets over the telemetry-test night."""

    def build(detector, scenario, threshold, **kwargs) -> FleetManager:
        return FleetManager(
            detector,
            num_shards=scenario.config.num_shards,
            alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
            threshold=threshold,
            **kwargs,
        )

    return build
