"""End-to-end telemetry over a seeded replay: transparency, health, export.

The load-bearing guarantee: telemetry must never perturb results.  A seeded
survey night replayed with telemetry fully on produces **bit-identical**
scores, thresholds, labels and alerts to the same night with telemetry off.
"""

import numpy as np
import pytest

from repro.obs import render_prometheus
from repro.obs.export import parse_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.simulation import ReplayHarness
from repro.streaming import StreamingService


def _replay(obs_night, make_obs_fleet, registry=None, tracer=None):
    scenario, detector, threshold = obs_night
    with use_registry(registry), use_tracer(tracer):
        fleet = make_obs_fleet(detector, scenario, threshold)
        report, trace = ReplayHarness(fleet, scenario).run()
    return fleet, report, trace


def test_telemetry_is_bit_transparent(obs_night, make_obs_fleet):
    _, report_off, trace_off = _replay(obs_night, make_obs_fleet)
    _, report_on, trace_on = _replay(
        obs_night, make_obs_fleet, registry=MetricsRegistry(), tracer=Tracer()
    )

    assert np.array_equal(trace_off.scores, trace_on.scores, equal_nan=True)
    assert np.array_equal(trace_off.thresholds, trace_on.thresholds, equal_nan=True)
    assert np.array_equal(trace_off.labels, trace_on.labels)
    assert np.array_equal(trace_off.alert_seqs, trace_on.alert_seqs)
    assert np.array_equal(trace_off.alert_stars, trace_on.alert_stars)
    assert np.array_equal(trace_off.alert_scores, trace_on.alert_scores)
    assert report_off.num_alerts == report_on.num_alerts
    assert report_off.recall == report_on.recall


def test_fleet_health_after_replay(obs_night, make_obs_fleet):
    scenario, _, _ = obs_night
    fleet, report, trace = _replay(obs_night, make_obs_fleet)

    health = fleet.health()
    assert health.steps_ingested == len(trace.seqs)
    assert health.num_shards == scenario.config.num_shards
    assert health.num_stars == scenario.num_stars
    assert health.warmed_up
    assert health.alerts_fired == report.num_alerts
    assert health.model_version is None        # not deployed from a registry
    assert len(health.shard_gap_rates) == scenario.config.num_shards
    assert 0.0 <= health.missing_rate < 0.5
    assert health.missing_rate == pytest.approx(
        float(np.mean(health.shard_gap_rates)), abs=1e-12
    )
    assert np.isfinite(health.p50_step_ms)
    assert health.p50_step_ms <= health.p99_step_ms
    assert health.healthy
    line = health.format()
    assert "fleet[unversioned]" in line and "healthy" in line
    assert health.to_dict()["steps_ingested"] == health.steps_ingested


def test_replay_metrics_and_prometheus_round_trip(obs_night, make_obs_fleet):
    registry = MetricsRegistry()
    fleet, report, trace = _replay(obs_night, make_obs_fleet, registry=registry)

    ticks = len(trace.seqs)
    assert registry.get("fleet_ticks_total").value == ticks
    assert registry.get("fleet_step_seconds").count == ticks
    assert registry.get("replay_frames_total").value == ticks
    assert (
        registry.get("replay_duplicates_dropped_total").value
        == report.duplicates_dropped
        > 0
    )
    assert registry.get("alerts_fired_total").value == report.num_alerts
    missing = registry.get("fleet_missing_observations_total")
    assert missing.values.sum() > 0          # the scenario injects NaN gaps
    assert registry.get("fleet_star_dropouts_total").value >= 1

    samples = parse_prometheus(render_prometheus(registry))
    assert samples[("fleet_ticks_total", ())] == ticks
    assert samples[("fleet_step_seconds_count", ())] == ticks
    assert samples[("fleet_missing_observations_total", (("shard", "0"),))] == float(
        missing.values[0]
    )


def test_replay_spans_nest_under_fleet_step(obs_night, make_obs_fleet):
    tracer = Tracer(capacity=64)
    _, _, trace = _replay(obs_night, make_obs_fleet, tracer=tracer)

    summary = tracer.summary()
    ticks = len(trace.seqs)
    for name in ("replay.frame", "fleet.step", "fleet.ingest", "fleet.forward",
                 "fleet.thresholds", "fleet.alerts"):
        assert summary[name].count == ticks, name
    step = tracer.spans_named("fleet.step")[-1]
    assert step.parent == "replay.frame"
    forward = tracer.spans_named("fleet.forward")[-1]
    assert forward.parent == "fleet.step" and forward.depth == 2
    # The ring is bounded; the aggregates above still cover every tick.
    assert len(tracer.spans) == 64


def test_service_health_nests_real_fleet(obs_night, make_obs_fleet):
    scenario, detector, threshold = obs_night
    fleet = make_obs_fleet(detector, scenario, threshold)
    service = StreamingService(fleet, max_queue=8)
    service.run(scenario.exposures[:40], scenario.timestamps[:40])

    health = service.health()
    assert health.processed_steps == 40
    assert health.fleet is not None
    assert health.fleet.steps_ingested == 40
    assert health.dropped_total == 0
    stats = service.stats()
    assert stats.processed_steps == 40
    assert "(queue_full=0 shed=0)" in stats.format()
    assert "fleet[" in health.format()
