"""Exporters: Prometheus text round-trip, JSONL snapshots, periodic flusher."""

import time

import numpy as np
import pytest

from repro.obs.export import (
    MetricsFlusher,
    parse_prometheus,
    read_jsonl_snapshots,
    render_prometheus,
    snapshot,
    write_jsonl_snapshot,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("fleet_ticks_total", "Ticks served").inc(42)
    registry.gauge("service_queue_depth", "Queued exposures").set(7)
    drops = registry.counter("service_dropped_total", "Drops", labels=("reason",))
    drops.labels(reason="queue_full").inc(3)
    drops.labels(reason="shed").inc(5)
    vector = registry.counter_vector("fleet_missing_total", size=3, label="shard")
    vector.add(np.array([1.0, 0.0, 4.0]))
    hist = registry.histogram("fleet_step_seconds", "Tick latency", buckets=(0.1, 1.0))
    hist.observe_many(np.array([0.05, 0.5, 0.5, 9.0]))
    return registry


def test_prometheus_round_trip():
    registry = _populated_registry()
    text = render_prometheus(registry)
    assert "# HELP fleet_ticks_total Ticks served" in text
    assert "# TYPE fleet_step_seconds histogram" in text

    samples = parse_prometheus(text)
    assert samples[("fleet_ticks_total", ())] == 42
    assert samples[("service_queue_depth", ())] == 7
    assert samples[("service_dropped_total", (("reason", "queue_full"),))] == 3
    assert samples[("service_dropped_total", (("reason", "shed"),))] == 5
    assert samples[("fleet_missing_total", (("shard", "2"),))] == 4
    # Histogram series are cumulative with an +Inf overflow bucket.
    assert samples[("fleet_step_seconds_bucket", (("le", "0.1"),))] == 1
    assert samples[("fleet_step_seconds_bucket", (("le", "1"),))] == 3
    assert samples[("fleet_step_seconds_bucket", (("le", "+Inf"),))] == 4
    assert samples[("fleet_step_seconds_count", ())] == 4
    assert samples[("fleet_step_seconds_sum", ())] == pytest.approx(10.05)


def test_render_empty_registry_and_parse_errors():
    assert render_prometheus(MetricsRegistry()) == ""
    assert parse_prometheus("") == {}
    assert parse_prometheus("# just a comment\n") == {}
    with pytest.raises(ValueError, match="unparseable"):
        parse_prometheus("{malformed 3\n")


def test_parse_special_values():
    samples = parse_prometheus("a NaN\nb +Inf\nc -Inf\n")
    assert np.isnan(samples[("a", ())])
    assert samples[("b", ())] == np.inf
    assert samples[("c", ())] == -np.inf


def test_snapshot_structure():
    registry = _populated_registry()
    snap = snapshot(registry)
    assert snap["counters"]["fleet_ticks_total"] == 42
    assert snap["counters"]['service_dropped_total{reason=shed}'] == 5
    assert snap["counters"]["fleet_missing_total{shard=2}"] == 4
    assert snap["gauges"]["service_queue_depth"] == 7
    hist = snap["histograms"]["fleet_step_seconds"]
    assert hist["count"] == 4
    assert sum(hist["counts"]) == 4
    assert 0.0 < hist["p50"] <= 1.0


def test_jsonl_snapshots_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "nested" / "metrics.jsonl"
    write_jsonl_snapshot(registry, path, timestamp=100.0)
    registry.counter("fleet_ticks_total").inc()
    write_jsonl_snapshot(registry, path, timestamp=200.0)

    records = read_jsonl_snapshots(path)
    assert [record["time"] for record in records] == [100.0, 200.0]
    assert records[0]["counters"]["fleet_ticks_total"] == 42
    assert records[1]["counters"]["fleet_ticks_total"] == 43


def test_jsonl_snapshot_serialises_empty_histogram_quantiles(tmp_path):
    registry = MetricsRegistry()
    registry.histogram("lat_seconds", "never observed")
    path = write_jsonl_snapshot(registry, tmp_path / "m.jsonl")
    record = read_jsonl_snapshots(path)[0]
    # NaN quantiles become JSON null rather than invalid JSON.
    assert record["histograms"]["lat_seconds"]["p50"] is None


def test_flusher_flushes_on_step_cadence(tmp_path):
    registry = _populated_registry()
    flusher = MetricsFlusher(registry, tmp_path / "m.jsonl", every_steps=4)
    assert not any(flusher.tick() for _ in range(3))
    assert flusher.flushes == 0
    assert flusher.tick() is True
    assert flusher.flushes == 1
    assert len(read_jsonl_snapshots(flusher.path)) == 1
    # The step counter rewinds after a flush.
    assert not flusher.tick()
    flusher.flush()
    assert flusher.flushes == 2


def test_flusher_flushes_on_wall_clock(tmp_path):
    registry = _populated_registry()
    flusher = MetricsFlusher(
        registry, tmp_path / "m.jsonl", every_steps=None, every_seconds=0.01
    )
    time.sleep(0.05)
    assert flusher.tick() is True
    assert flusher.flushes == 1


def test_flusher_validates_cadence(tmp_path):
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="every_steps and/or every_seconds"):
        MetricsFlusher(registry, tmp_path / "m.jsonl", every_steps=None)
    with pytest.raises(ValueError, match="every_steps must be positive"):
        MetricsFlusher(registry, tmp_path / "m.jsonl", every_steps=0)
    with pytest.raises(ValueError, match="every_seconds must be positive"):
        MetricsFlusher(registry, tmp_path / "m.jsonl", every_seconds=0.0)


def test_label_values_escape_and_round_trip():
    """Backslashes, newlines and double quotes in label values survive the
    render -> parse round trip (the exposition format's escaping rules)."""
    registry = MetricsRegistry()
    gauge = registry.gauge("weird_labels", "label torture", labels=("path",))
    values = [
        'say "hi"',
        "back\\slash",
        "multi\nline",
        'all \\ of "them"\ntogether',
        "braces { } and = signs",
        "",
    ]
    for index, value in enumerate(values):
        gauge.labels(path=value).set(float(index))
    text = render_prometheus(registry)
    assert '\\"hi\\"' in text                     # quotes escaped on the wire
    assert "back\\\\slash" in text                # backslash doubled
    assert "multi\\nline" in text                 # newline kept to one line
    assert all(line.count("weird_labels") <= 1 for line in text.splitlines())
    samples = parse_prometheus(text)
    for index, value in enumerate(values):
        assert samples[("weird_labels", (("path", value),))] == float(index)


def test_escaping_helpers_invert_exactly():
    from repro.obs.export import _escape_label_value, _unescape_label_value

    for raw in ('a"b', "a\\b", "a\nb", "\\n", '\\"', "plain", "", "\\", "\n\n"):
        assert _unescape_label_value(_escape_label_value(raw)) == raw
    # Escaped forms are unambiguous: "\\n" (literal backslash + n) is not "\n".
    assert _escape_label_value("\\n") == "\\\\n"
    assert _unescape_label_value("\\\\n") == "\\n"
    assert _unescape_label_value("\\n") == "\n"
