"""FlightRecorder: ring semantics, triggers, npz dumps, bit-identical replay."""

import numpy as np
import pytest

from repro.obs import FlightRecord, FlightRecorder
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.simulation import ReplayHarness, replay_flight_record


class _Alert:
    def __init__(self, star, score, threshold):
        self.star = star
        self.score = score
        self.threshold = threshold


class _Result:
    """FleetStepResult-shaped stub with a global threshold."""

    def __init__(self, step, num_stars=4, alerts=0):
        self.step = step
        self.scores = np.full(num_stars, float(step))
        self.thresholds = None
        self.threshold = 9.0
        self.labels = np.zeros(num_stars, dtype=np.int64)
        self.alerts = tuple(_Alert(i, 10.0 + step, 9.0) for i in range(alerts))


def _feed(recorder, ticks, start=0, alerts=0, timestamp=None):
    rows = np.zeros((2, 2))
    for step in range(start, start + ticks):
        recorder.record(rows, timestamp, _Result(step, alerts=alerts))


# ---------------------------------------------------------------------------
# ring + trigger semantics
# ---------------------------------------------------------------------------
def test_constructor_validation():
    for bad in (
        dict(capacity=0),
        dict(cooldown=-1),
        dict(alert_storm_window=0),
        dict(alert_storm_threshold=0),
    ):
        with pytest.raises(ValueError):
            FlightRecorder(**bad)


def test_ring_keeps_only_the_latest_frames():
    recorder = FlightRecorder(capacity=4, alert_storm_threshold=None)
    _feed(recorder, 10)
    assert recorder.num_frames == 4
    assert recorder.ticks_recorded == 10
    record = recorder.trigger("manual")
    assert record is not None
    assert record.num_ticks == 4
    assert record.trigger_step == 9
    np.testing.assert_array_equal(record.steps, [6, 7, 8, 9])
    np.testing.assert_array_equal(record.seqs, record.steps)   # default identity
    # A global threshold expands to the per-star grid; None timestamps
    # encode as NaN so auto-advance ticks replay exactly.
    assert record.thresholds.shape == record.scores.shape
    np.testing.assert_array_equal(record.thresholds, 9.0)
    assert np.isnan(record.timestamps).all()
    assert "flight[manual]" in str(record)


def test_trigger_on_empty_ring_returns_none():
    recorder = FlightRecorder(capacity=4)
    assert recorder.trigger("manual") is None
    assert recorder.records == []


def test_cooldown_suppresses_repeat_dumps():
    registry = MetricsRegistry()
    with use_registry(registry):
        recorder = FlightRecorder(capacity=8, cooldown=100, alert_storm_threshold=None)
    _feed(recorder, 5)
    assert recorder.trigger("drift_trip") is not None
    assert recorder.trigger("drift_trip") is None       # inside the cooldown
    assert recorder.suppressed_triggers == 1
    _feed(recorder, 100, start=5)
    assert recorder.trigger("drift_trip") is not None   # cooldown elapsed
    assert len(recorder.records) == 2
    assert registry.get("flight_dumps_total").labels(reason="drift_trip").value == 2


def test_alert_storm_watchdog_fires():
    recorder = FlightRecorder(
        capacity=16, alert_storm_window=4, alert_storm_threshold=6, cooldown=0
    )
    _feed(recorder, 2)                                  # quiet: no trigger
    assert recorder.records == []
    _feed(recorder, 3, start=2, alerts=2)               # 6 alerts in-window
    reasons = [record.reason for record in recorder.records]
    assert reasons == ["alert_storm"]
    record = recorder.records[0]
    assert record.num_alerts == 6
    np.testing.assert_array_equal(record.alert_stars, [0, 1, 0, 1, 0, 1])
    np.testing.assert_array_equal(record.alert_steps, [2, 2, 3, 3, 4, 4])


def test_storm_watchdog_window_slides():
    recorder = FlightRecorder(
        capacity=64, alert_storm_window=4, alert_storm_threshold=6, cooldown=0
    )
    # One alert per tick never sums to 6 inside a 4-tick window.
    _feed(recorder, 30, alerts=1)
    assert recorder.records == []


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def test_dump_dir_writes_loadable_npz(tmp_path):
    recorder = FlightRecorder(capacity=8, dump_dir=tmp_path / "black-box")
    _feed(recorder, 6, alerts=1, timestamp=100.0)
    record = recorder.trigger("slo_burn")
    assert record.path is not None
    assert record.path.name == "flight-slo_burn-step000005.npz"
    loaded = FlightRecord.load(record.path)
    assert loaded.reason == "slo_burn"
    assert loaded.trigger_step == 5
    assert loaded.path == record.path
    for name in ("seqs", "steps", "timestamps", "rows", "scores",
                 "thresholds", "labels", "alert_stars", "alert_scores"):
        np.testing.assert_array_equal(getattr(loaded, name), getattr(record, name))


def test_load_rejects_wrong_key_sets(tmp_path):
    recorder = FlightRecorder(capacity=4)
    _feed(recorder, 3)
    record = recorder.trigger("manual")
    path = tmp_path / "tampered.npz"
    arrays = {name: getattr(record, name) for name in ("seqs", "steps", "scores")}
    np.savez_compressed(path, **arrays)
    with pytest.raises(ValueError, match="wrong keys"):
        FlightRecord.load(path)


# ---------------------------------------------------------------------------
# the acceptance criterion: a dump replays bit-identically
# ---------------------------------------------------------------------------
def test_flight_record_replays_bit_identically(obs_night, make_obs_fleet, tmp_path):
    """A full-history dump re-run through a fresh, identically constructed
    fleet reproduces the incident's scores, thresholds, labels and alerts
    exactly — the post-mortem runs the actual night, not a reconstruction."""
    scenario, detector, threshold = obs_night
    recorder = FlightRecorder(
        capacity=512, dump_dir=tmp_path, alert_storm_threshold=None
    )
    fleet = make_obs_fleet(detector, scenario, threshold, recorder=recorder)
    report, night_trace = ReplayHarness(fleet, scenario).run()
    assert recorder.ticks_recorded == len(night_trace.seqs)
    assert recorder.num_frames == len(night_trace.seqs)   # ring never wrapped

    record = recorder.trigger("post_mortem")
    assert record is not None
    assert record.num_ticks == len(night_trace.seqs)
    assert record.num_alerts == report.num_alerts

    fresh = make_obs_fleet(detector, scenario, threshold)
    trace, mismatches = record.replay(fresh)
    assert mismatches == []
    assert np.array_equal(trace.scores, record.scores, equal_nan=True)

    # The dump on disk carries everything the in-memory record did: loading
    # it back and replaying through another fresh fleet still pins exactly.
    loaded = FlightRecord.load(record.path)
    _, mismatches = replay_flight_record(make_obs_fleet(detector, scenario, threshold), loaded)
    assert mismatches == []


def test_replay_reports_divergence(obs_night, make_obs_fleet):
    """A fleet that does NOT match the incident's construction must be
    called out — silence here would turn post-mortems into fiction."""
    scenario, detector, threshold = obs_night
    recorder = FlightRecorder(capacity=512, alert_storm_threshold=None)
    fleet = make_obs_fleet(detector, scenario, threshold, recorder=recorder)
    ReplayHarness(fleet, scenario).run()
    record = recorder.trigger("post_mortem")

    skewed = make_obs_fleet(detector, scenario, threshold * 0.2)
    _, mismatches = record.replay(skewed)
    assert mismatches, "a mis-thresholded replay must not pin"

    with pytest.raises(TypeError, match="step"):
        replay_flight_record(object(), record)
