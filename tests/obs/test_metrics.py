"""Registry and instrument correctness, plus the no-op fast path."""

import itertools
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    use_registry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer, get_tracer


# ---------------------------------------------------------------------------
# scalar instruments
# ---------------------------------------------------------------------------
def test_counter_monotonic():
    counter = Counter("ticks_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    counter.reset()
    assert counter.value == 0.0


def test_gauge_moves_both_ways():
    gauge = Gauge("queue_depth")
    gauge.set(7)
    gauge.inc(3)
    gauge.dec(1.5)
    assert gauge.value == 8.5


def test_histogram_bucket_semantics():
    hist = Histogram("latency", buckets=(0.1, 1.0, 10.0))
    hist.observe(0.05)    # first bucket
    hist.observe(0.1)     # le is inclusive: still the first bucket
    hist.observe(5.0)     # third bucket
    hist.observe(99.0)    # +Inf overflow
    assert hist.counts.tolist() == [2, 0, 1, 1]
    assert hist.cumulative_counts.tolist() == [2, 2, 3, 4]
    assert hist.count == 4
    assert hist.sum == pytest.approx(0.05 + 0.1 + 5.0 + 99.0)


def test_histogram_observe_many_matches_observe():
    values = np.array([0.01, 0.2, 0.2, 3.0, 50.0])
    one_by_one = Histogram("a", buckets=(0.1, 1.0, 10.0))
    for value in values:
        one_by_one.observe(float(value))
    batched = Histogram("b", buckets=(0.1, 1.0, 10.0))
    batched.observe_many(values)
    batched.observe_many(np.empty(0))   # no-op
    assert np.array_equal(one_by_one.counts, batched.counts)
    assert one_by_one.count == batched.count
    assert one_by_one.sum == pytest.approx(batched.sum)


def test_histogram_validates_buckets():
    with pytest.raises(ValueError, match="at least one"):
        Histogram("h", buckets=())
    with pytest.raises(ValueError, match="finite"):
        Histogram("h", buckets=(1.0, float("inf")))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", buckets=(1.0, 1.0))


def test_histogram_quantile():
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    assert np.isnan(hist.quantile(0.5))
    with pytest.raises(ValueError, match="q must be"):
        hist.quantile(1.5)
    hist.observe_many(np.array([0.5, 1.5, 1.5, 3.0]))
    assert 0.0 < hist.quantile(0.25) <= 1.0
    assert 1.0 < hist.quantile(0.6) <= 2.0
    # Mass in the overflow bucket clamps to the last finite bound.
    hist.observe_many(np.full(20, 100.0))
    assert hist.quantile(0.99) == 4.0


@settings(deadline=None, max_examples=60)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=80
    ),
    bounds=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=8,
        unique=True,
    ),
)
def test_histogram_counts_always_sum_to_count(values, bounds):
    """Property: every observation lands in exactly one bucket."""
    hist = Histogram("h", buckets=tuple(sorted(bounds)))
    for value in values:
        hist.observe(value)
    hist.observe_many(np.asarray(values))
    total = 2 * len(values)
    assert int(hist.counts.sum()) == hist.count == total
    assert int(hist.cumulative_counts[-1]) == total
    assert hist.sum == pytest.approx(2 * sum(values), rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# registry resolution
# ---------------------------------------------------------------------------
def test_registry_resolves_idempotently():
    registry = MetricsRegistry()
    first = registry.counter("fleet_ticks_total", "ticks")
    second = registry.counter("fleet_ticks_total")
    assert first is second
    assert "fleet_ticks_total" in registry
    assert registry.get("fleet_ticks_total") is first
    assert [m.name for m in registry.collect()] == ["fleet_ticks_total"]


def test_registry_rejects_kind_mismatch_and_bad_names():
    registry = MetricsRegistry()
    registry.counter("a_total")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.gauge("a_total")
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("9starts_with_digit")
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("has space")


def test_registry_reset_zeroes_but_keeps_instruments():
    registry = MetricsRegistry()
    counter = registry.counter("a_total")
    hist = registry.histogram("lat_seconds")
    counter.inc(5)
    hist.observe(0.2)
    registry.reset()
    assert registry.counter("a_total") is counter
    assert counter.value == 0.0
    assert hist.count == 0


def test_labelled_family_children_and_cardinality_cap():
    registry = MetricsRegistry(max_label_cardinality=2)
    family = registry.counter("drops_total", "drops", labels=("reason",))
    family.labels(reason="queue_full").inc()
    family.labels(reason="queue_full").inc()
    family.labels(reason="shed").inc(3)
    assert family.labels(reason="queue_full").value == 2
    assert family.children[("shed",)].value == 3
    with pytest.raises(ValueError, match="takes labels"):
        family.labels(cause="bad_label_name")
    with pytest.raises(ValueError, match="cardinality cap"):
        family.labels(reason="a_third_value")


def test_vector_metrics_grow_and_check_shape():
    registry = MetricsRegistry()
    missing = registry.counter_vector("missing_total", size=3, label="shard")
    missing.add(np.array([1.0, 0.0, 2.0]))
    missing.inc_at(1)
    assert missing.values.tolist() == [1.0, 1.0, 2.0]
    assert missing.total == 4.0
    with pytest.raises(ValueError, match="shape"):
        missing.add(np.zeros(4))
    # Re-requesting with a larger fleet grows the array, preserving totals.
    grown = registry.counter_vector("missing_total", size=5)
    assert grown is missing
    assert grown.values.tolist() == [1.0, 1.0, 2.0, 0.0, 0.0]

    gauge = registry.gauge_vector("gap_rate", size=2)
    gauge.set(np.array([0.1, 0.2]))
    gauge.set_at(0, 0.5)
    assert gauge.values.tolist() == [0.5, 0.2]
    with pytest.raises(ValueError, match="scalar counter"):
        registry.counter("other_total")
        registry.counter_vector("other_total", size=2)


# ---------------------------------------------------------------------------
# defaults and the no-op fast path
# ---------------------------------------------------------------------------
def test_enable_disable_telemetry_switches_both_defaults():
    assert isinstance(get_registry(), NullRegistry)
    registry = enable_telemetry()
    try:
        assert get_registry() is registry
        assert registry.enabled
        assert isinstance(get_tracer(), Tracer)
    finally:
        disable_telemetry()
    assert get_registry() is NULL_REGISTRY
    assert isinstance(get_tracer(), NullTracer)


def test_use_registry_restores_previous_default():
    scoped = MetricsRegistry()
    with use_registry(scoped) as active:
        assert active is scoped
        assert get_registry() is scoped
    assert get_registry() is NULL_REGISTRY


def test_null_registry_hands_out_shared_singletons():
    assert not NULL_REGISTRY.enabled
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter_vector("c", size=9)
    assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge_vector("d", size=9)
    assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b", buckets=(1.0,))
    assert NULL_REGISTRY.collect() == []
    family = NULL_REGISTRY.counter("drops", labels=("reason",))
    assert family.labels(reason="anything") is family
    assert np.isnan(NULL_REGISTRY.histogram("h").quantile(0.5))


def test_null_instruments_allocate_nothing():
    """Telemetry off must cost zero allocations per instrumented tick."""
    counter = NULL_REGISTRY.counter("ticks_total")
    gauge = NULL_REGISTRY.gauge("depth")
    hist = NULL_REGISTRY.histogram("lat", buckets=LATENCY_BUCKETS)

    def tick_loop(iterations):
        for _ in itertools.repeat(None, iterations):
            counter.inc()
            counter.inc(2.0)
            gauge.set(3.0)
            gauge.inc()
            hist.observe(0.5)
            with NULL_TRACER.span("fleet.step"):
                pass

    tick_loop(100)  # warm up caches / lazy imports
    tracemalloc.start()
    try:
        tick_loop(10)
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        tick_loop(1000)
        after, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert after - before == 0, "null instruments leaked per-tick allocations"
    # The loop scaffolding itself (one itertools.repeat) is the only
    # transient allowed; per-iteration cost must be zero.
    assert peak - before < 512
