"""Span tracer: nesting, ring bounding, eviction-immune aggregates."""

import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_default_tracer,
    trace,
    use_tracer,
)


def test_spans_nest_with_parent_and_depth():
    tracer = Tracer()
    with tracer.span("fleet.step"):
        with tracer.span("fleet.forward"):
            pass
        with tracer.span("fleet.alerts"):
            pass
    spans = tracer.spans
    # Children complete before their parent, so the ring is innermost-first.
    assert [span.name for span in spans] == ["fleet.forward", "fleet.alerts", "fleet.step"]
    forward, alerts, step = spans
    assert step.depth == 0 and step.parent is None
    assert forward.depth == 1 and forward.parent == "fleet.step"
    assert alerts.depth == 1 and alerts.parent == "fleet.step"
    assert step.duration_ns >= forward.duration_ns + alerts.duration_ns
    assert step.duration_ms == pytest.approx(step.duration_ns / 1e6)


def test_ring_bounds_records_but_stats_survive_eviction():
    tracer = Tracer(capacity=4)
    for _ in range(10):
        with tracer.span("tick"):
            pass
    assert len(tracer.spans) == 4
    assert len(tracer.spans_named("tick")) == 4
    stats = tracer.summary()["tick"]
    assert stats.count == 10
    assert stats.total_ns >= stats.max_ns > 0
    assert stats.mean_ms == pytest.approx(stats.total_ns / 10 / 1e6)
    assert stats.total_ms == pytest.approx(stats.total_ns / 1e6)
    tracer.clear()
    assert tracer.spans == [] and tracer.summary() == {}


def test_span_records_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("failure inside the span")
    assert tracer.summary()["boom"].count == 1
    # The stack unwound: the next span is a root again.
    with tracer.span("after"):
        pass
    assert tracer.spans_named("after")[0].depth == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        Tracer(capacity=0)


def test_stacks_are_per_thread():
    tracer = Tracer()

    def worker():
        with tracer.span("worker.root"):
            pass

    with tracer.span("main.root"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    worker_root = tracer.spans_named("worker.root")[0]
    # The worker ran while main.root was open, yet does not inherit it.
    assert worker_root.depth == 0 and worker_root.parent is None


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
    with NULL_TRACER.span("ignored"):
        pass
    assert NULL_TRACER.spans == []
    assert NULL_TRACER.spans_named("ignored") == []
    assert NULL_TRACER.summary() == {}
    NULL_TRACER.clear()


def test_trace_resolves_default_per_call():
    assert isinstance(get_tracer(), NullTracer)
    tracer = Tracer()
    with use_tracer(tracer) as active:
        assert active is tracer
        with trace("training.epoch"):
            pass
    assert tracer.summary()["training.epoch"].count == 1
    assert isinstance(get_tracer(), NullTracer)
    # set_default_tracer(None) is the documented reset path.
    set_default_tracer(Tracer())
    assert isinstance(get_tracer(), Tracer)
    set_default_tracer(None)
    assert get_tracer() is NULL_TRACER
