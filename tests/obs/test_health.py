"""Service accounting: drop reasons, shedding, health snapshots, WARN logs."""

import logging

import numpy as np
import pytest

from repro.obs.health import FleetHealth, latency_percentiles
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.streaming import StreamingService


class _StubResult:
    def __init__(self, num_stars):
        self.scores = np.zeros(num_stars)
        self.alerts = ()


class _StubFleet:
    """Duck-typed scorer: step() only — no health(), no num_stars."""

    def __init__(self, num_stars=8):
        self._num_stars = num_stars
        self.steps = 0

    def step(self, rows, timestamp=None):
        self.steps += 1
        return _StubResult(self._num_stars)


def _fill(service, count):
    for _ in range(count):
        service.submit(np.zeros((2, 4)))


# ---------------------------------------------------------------------------
# drop reasons
# ---------------------------------------------------------------------------
def test_submit_counts_queue_full_drops():
    service = StreamingService(_StubFleet(), max_queue=3)
    _fill(service, 3)
    assert service.submit(np.zeros((2, 4))) is False
    assert service.submit(np.zeros((2, 4))) is False
    stats = service.stats()
    assert stats.dropped_queue_full == 2
    assert stats.dropped_shed == 0
    assert stats.dropped_steps == 2
    assert stats.queue_depth == 3
    assert "(queue_full=2 shed=0)" in str(stats)


def test_shed_drops_stalest_first():
    fleet = _StubFleet()
    service = StreamingService(fleet, max_queue=10)
    _fill(service, 5)
    assert service.shed(2) == 2
    assert service.queue_depth == 3
    assert service.shed() == 3          # no count: shed everything
    assert service.shed(4) == 0         # empty queue sheds nothing
    with pytest.raises(ValueError, match="non-negative"):
        service.shed(-1)
    stats = service.stats()
    assert stats.dropped_shed == 5
    assert stats.dropped_queue_full == 0
    assert stats.dropped_steps == 5
    assert fleet.steps == 0             # shed exposures are never scored


def test_drop_reasons_feed_labelled_metric():
    registry = MetricsRegistry()
    with use_registry(registry):
        service = StreamingService(_StubFleet(), max_queue=1)
    _fill(service, 3)                   # 1 queued, 2 rejected
    service.shed(1)
    drops = registry.get("service_dropped_total")
    assert drops.labels(reason="queue_full").value == 2
    assert drops.labels(reason="shed").value == 1
    assert registry.get("service_submitted_total").value == 1


def test_queue_drop_warns_rate_limited(caplog):
    service = StreamingService(_StubFleet(), max_queue=1)
    _fill(service, 1)
    with caplog.at_level(logging.WARNING, logger="repro.streaming.service"):
        _fill(service, 3)               # drops 1, 2, 3: only the first logs
        service.shed(1)                 # shed always logs
    drop_logs = [r for r in caplog.records if "queue_drop" in r.message]
    assert len(drop_logs) == 2
    assert "reason=queue_full" in drop_logs[0].getMessage()
    assert "reason=shed" in drop_logs[1].getMessage()


# ---------------------------------------------------------------------------
# health snapshots
# ---------------------------------------------------------------------------
def test_service_health_without_fleet_health():
    service = StreamingService(_StubFleet(), max_queue=4)
    _fill(service, 2)
    service.drain()
    health = service.health()
    assert health.fleet is None             # duck-typed fleet has no health()
    assert health.processed_steps == 2
    assert health.queue_depth == 0
    assert health.max_queue_depth == 2
    assert not health.under_pressure
    assert health.healthy
    assert np.isfinite(health.p50_step_ms)
    assert "service steps=2" in health.format()


def test_service_health_under_pressure():
    service = StreamingService(_StubFleet(), max_queue=4)
    _fill(service, 3)                       # 3 > 4 // 2: pressure
    health = service.health()
    assert health.under_pressure
    assert not health.healthy
    assert "DEGRADED" in str(health)
    data = health.to_dict()
    assert data["healthy"] is False
    assert data["fleet"] is None


def test_fleet_health_degrades_on_gap_rates():
    base = dict(
        steps_ingested=100, num_shards=2, num_stars=8, backend="plan",
        threshold_mode="global", model_version="v3", warmed_up=True,
        alerts_fired=1, threshold_refits=0, rearm_suppressed_stars=0,
        dropouts=2, rejoins=2, missing_rate=0.05,
    )
    healthy = FleetHealth(shard_gap_rates=[0.1, 0.2], **base)
    assert healthy.healthy
    assert "fleet[v3]" in healthy.format()
    drowning = FleetHealth(shard_gap_rates=[0.1, 0.6], **base)
    assert not drowning.healthy
    cold = FleetHealth(shard_gap_rates=[0.0, 0.0], **{**base, "warmed_up": False})
    assert not cold.healthy
    assert cold.to_dict()["healthy"] is False


def test_service_health_nests_fleet_health():
    fleet_health = FleetHealth(
        steps_ingested=10, num_shards=1, num_stars=4, backend="plan",
        threshold_mode="global", model_version=None, warmed_up=True,
        alerts_fired=0, threshold_refits=0, rearm_suppressed_stars=0,
        dropouts=0, rejoins=0, missing_rate=0.0, shard_gap_rates=[0.0],
    )

    class _HealthyFleet(_StubFleet):
        def health(self):
            return fleet_health

    service = StreamingService(_HealthyFleet(), max_queue=4)
    health = service.health()
    assert health.fleet is fleet_health
    assert health.healthy
    assert health.to_dict()["fleet"]["num_stars"] == 4
    assert "fleet[unversioned]" in health.format()


# ---------------------------------------------------------------------------
# latency percentiles
# ---------------------------------------------------------------------------
def test_latency_percentiles():
    p50, p99 = latency_percentiles([])
    assert np.isnan(p50) and np.isnan(p99)
    p50, p99 = latency_percentiles([0.002])
    assert p50 == p99 == pytest.approx(2.0)    # single sample verbatim, in ms
    p50, p99 = latency_percentiles(np.linspace(0.001, 0.1, 100))
    assert p50 < p99
    assert p50 == pytest.approx(50.5, rel=0.05)


def test_fleet_health_immediately_after_construction(obs_night, make_obs_fleet):
    """A zero-tick fleet snapshots cleanly: no division by an empty ring, NaN
    latencies (not garbage), cold (= degraded) until warm-up completes."""
    scenario, detector, threshold = obs_night
    fleet = make_obs_fleet(detector, scenario, threshold)
    health = fleet.health()
    assert health.steps_ingested == 0
    assert not health.warmed_up
    assert np.isnan(health.p50_step_ms) and np.isnan(health.p99_step_ms)
    assert health.missing_rate == 0.0
    assert health.shard_gap_rates == [0.0] * scenario.config.num_shards
    assert health.alerts_fired == 0
    assert health.drift_tripped_stars == 0
    assert not health.healthy                      # cold fleets are degraded
    line = health.format()
    assert "steps=0" in line and "drift_tripped=0" in line and "DEGRADED" in line
    data = health.to_dict()
    assert data["healthy"] is False
    assert data["drift_tripped_stars"] == 0
