"""Tests for the experiment harness (profiles, formatting, runners on the tiny profile)."""

import numpy as np
import pytest

from repro.experiments import (
    ALL_DATASETS,
    ALL_METHODS,
    EXPERIMENTS,
    PROFILES,
    build_method,
    format_ablation_table,
    format_performance_table,
    format_series,
    get_experiment,
    get_profile,
    graph_agreement,
    load_dataset,
    run_fig5,
    run_fig8,
    run_fig9,
    run_method_on_dataset,
    run_table1,
    run_variant_on_dataset,
)


TINY = PROFILES["tiny"]


class TestProfiles:
    def test_profiles_exist(self):
        assert set(PROFILES) == {"tiny", "fast", "full"}

    def test_get_profile_default_and_env(self, monkeypatch):
        assert get_profile("tiny").name == "tiny"
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        assert get_profile().name == "tiny"
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile().name == "fast"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("gigantic")

    def test_full_profile_matches_paper_settings(self):
        config = PROFILES["full"].aero_config()
        assert config.window == 200
        assert config.short_window == 60
        assert config.learning_rate == pytest.approx(1e-3)

    def test_aero_config_overrides(self):
        config = TINY.aero_config(d_model=8)
        assert config.d_model == 8

    def test_baseline_kwargs(self):
        assert TINY.baseline_kwargs("SR") == {}
        assert TINY.baseline_kwargs("GDN")["epochs"] == TINY.neural_epochs


class TestDatasetsAndMethods:
    def test_all_six_datasets_load(self):
        for name in ALL_DATASETS:
            ds = load_dataset(name, TINY)
            assert ds.name == name
            assert ds.test_labels.sum() > 0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("SyntheticGiant", TINY)

    def test_build_every_method(self):
        for name in ALL_METHODS:
            assert build_method(name, TINY) is not None

    def test_all_methods_has_twelve_entries(self):
        assert len(ALL_METHODS) == 12
        assert "AERO" in ALL_METHODS


class TestFormatting:
    def test_performance_table_contains_methods_and_numbers(self):
        rows = [
            {"method": "AERO", "dataset": "D1", "precision": 0.9, "recall": 1.0, "f1": 0.95},
            {"method": "SR", "dataset": "D1", "precision": 0.5, "recall": 0.5, "f1": 0.5},
        ]
        text = format_performance_table(rows, ["D1"])
        assert "AERO" in text and "SR" in text
        assert "95.00" in text and "50.00" in text

    def test_performance_table_missing_cell(self):
        rows = [{"method": "AERO", "dataset": "D1", "precision": 1.0, "recall": 1.0, "f1": 1.0}]
        text = format_performance_table(rows, ["D1", "D2"])
        assert "-" in text

    def test_ablation_table_uses_variant_names(self):
        rows = [{"variant": "w/o temporal", "dataset": "D1", "precision": 0.1, "recall": 0.2, "f1": 0.13}]
        assert "w/o temporal" in format_ablation_table(rows, ["D1"])

    def test_format_series(self):
        text = format_series("Fig. X", [1, 2], [0.5, 0.75], x_label="stars", y_label="seconds")
        assert "Fig. X" in text and "stars" in text and "0.7500" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        }

    def test_get_experiment(self):
        assert get_experiment("table2").paper_artifact == "Table II"
        with pytest.raises(KeyError):
            get_experiment("table9")


class TestLightweightRunners:
    def test_table1_rows_and_rendering(self):
        rows, text = run_table1(profile=TINY)
        assert len(rows) == 6
        assert "SyntheticMiddle" in text
        assert all(row["anomaly_pct"] > 0 for row in rows)

    def test_fig5_templates(self):
        curves = run_fig5(length=40)
        assert set(curves) >= {"flare", "microlensing", "eclipse", "nova", "supernova"}
        assert all(len(curve) == 40 for curve in curves.values())

    def test_run_single_method_row(self):
        dataset = load_dataset("SyntheticMiddle", TINY)
        row = run_method_on_dataset("SPOT", dataset, TINY)
        assert row["method"] == "SPOT"
        assert 0.0 <= row["f1"] <= 1.0

    def test_run_single_variant_row(self):
        dataset = load_dataset("SyntheticMiddle", TINY)
        row = run_variant_on_dataset("no_noise_module", dataset, TINY)
        assert row["variant_id"] == "no_noise_module"
        assert 0.0 <= row["f1"] <= 1.0

    def test_graph_agreement_scores(self):
        ground_truth = np.zeros((4, 4))
        ground_truth[:2, :2] = 1.0
        perfect = ground_truth.copy()
        assert graph_agreement(perfect, ground_truth) > 0.9
        uniform = np.ones((4, 4))
        assert abs(graph_agreement(uniform, ground_truth)) < 1e-9

    def test_fig8_learned_graphs(self):
        result = run_fig8(dataset_name="SyntheticMiddle", num_snapshots=2, profile=TINY)
        assert len(result["learned_graphs"]) >= 1
        for graph in result["learned_graphs"]:
            assert graph.shape == result["ground_truth_graph"].shape
        assert len(result["agreements"]) == len(result["learned_graphs"])

    def test_fig9_error_decomposition(self):
        result = run_fig9(dataset_name="SyntheticMiddle", profile=TINY)
        assert result["stage1_scores"].shape == result["final_scores"].shape
        assert result["noise_error_reduction"] > 0
        assert result["anomaly_error_retention"] >= 0
        assert np.isfinite(result["threshold"])
