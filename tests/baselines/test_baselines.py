"""Tests for the eleven baseline detectors and their shared protocol."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    MULTIVARIATE_BASELINES,
    UNIVARIATE_BASELINES,
    FluxEV,
    GDN,
    SpectralResidual,
    Spot,
    TemplateMatching,
    dominant_periods,
    get_baseline,
)
from repro.data import SyntheticConfig, generate_synthetic

FAST_NN = dict(epochs=1, train_stride=8, window=12)


def tiny_dataset(seed=21):
    config = SyntheticConfig(
        num_variates=5,
        train_length=100,
        test_length=100,
        num_noise_events=2,
        num_anomaly_segments=2,
        seed=seed,
    )
    return generate_synthetic(config)


def spiky_series(length=300, variates=3, spike_at=150, spike_size=10.0, seed=0):
    rng = np.random.default_rng(seed)
    train = rng.normal(0, 0.3, size=(length, variates))
    test = rng.normal(0, 0.3, size=(length, variates))
    labels = np.zeros((length, variates), dtype=int)
    test[spike_at:spike_at + 5, 1] += spike_size
    labels[spike_at:spike_at + 5, 1] = 1
    return train, test, labels


class TestRegistry:
    def test_contains_all_eleven(self):
        assert len(BASELINE_REGISTRY) == 11
        assert set(UNIVARIATE_BASELINES) | set(MULTIVARIATE_BASELINES) == set(BASELINE_REGISTRY)

    def test_get_baseline_unknown(self):
        with pytest.raises(KeyError):
            get_baseline("LSTM-Mega")

    def test_get_baseline_constructs_named_classes(self):
        assert get_baseline("SR").name == "SR"
        assert get_baseline("GDN", **FAST_NN).name == "GDN"

    def test_names_match_registry_keys(self):
        for name, cls in BASELINE_REGISTRY.items():
            if name == "TM":
                assert cls.name == "TM"
            else:
                assert cls.name == name or cls.name.replace(" ", "") == name


class TestStatisticalBaselines:
    def test_spot_scores_deviation(self):
        train, test, labels = spiky_series()
        detector = Spot().fit(train)
        scores = detector.score(test)
        assert scores[labels.astype(bool)].mean() > 5 * scores[~labels.astype(bool)].mean()

    def test_spot_detects_planted_spike(self):
        train, test, labels = spiky_series()
        outcome = Spot().fit(train).evaluate(test, labels)
        assert outcome.result.recall == 1.0

    def test_spot_requires_fit(self):
        with pytest.raises(RuntimeError):
            Spot().score(np.zeros((10, 2)))

    def test_template_matching_scores_flare_shapes(self):
        from repro.data import flare_template

        rng = np.random.default_rng(1)
        train = rng.normal(0, 0.2, size=(300, 2))
        test = rng.normal(0, 0.2, size=(300, 2))
        test[100:130, 0] += flare_template(30, amplitude=3.0)
        detector = TemplateMatching().fit(train)
        scores = detector.score(test)
        assert scores[100:130, 0].max() > np.percentile(scores[:, 0], 99)

    def test_template_matching_invalid_length(self):
        with pytest.raises(ValueError):
            TemplateMatching(template_length=2)

    def test_spectral_residual_scores_are_non_negative(self):
        train, test, _ = spiky_series()
        scores = SpectralResidual().fit(train).score(test)
        assert (scores >= 0).all()

    def test_spectral_residual_highlights_spike(self):
        train, test, labels = spiky_series(spike_size=15.0)
        scores = SpectralResidual().fit(train).score(test)
        anomalous = labels.astype(bool)
        assert scores[anomalous].max() > np.percentile(scores[~anomalous], 99)

    def test_spectral_residual_validation(self):
        with pytest.raises(ValueError):
            SpectralResidual(smoothing_window=0)

    def test_fluxev_detects_pattern_change(self):
        train, test, labels = spiky_series(spike_size=8.0)
        outcome = FluxEV().fit(train).evaluate(test, labels)
        assert outcome.result.recall > 0.0

    def test_fluxev_validation(self):
        with pytest.raises(ValueError):
            FluxEV(local_window=1)
        with pytest.raises(ValueError):
            FluxEV(smoothing=0.0)


class TestNeuralBaselines:
    @pytest.mark.parametrize("name", sorted(set(BASELINE_REGISTRY) - {"TM", "SR", "SPOT", "FluxEV"}))
    def test_fit_score_evaluate_roundtrip(self, name):
        dataset = tiny_dataset()
        detector = get_baseline(name, **FAST_NN)
        detector.fit(dataset.train)
        scores = detector.score(dataset.test)
        assert scores.shape == dataset.test.shape
        assert np.isfinite(scores).all()
        assert (scores >= 0).all()
        outcome = detector.evaluate(dataset.test, dataset.test_labels)
        assert 0.0 <= outcome.result.f1 <= 1.0
        assert len(detector.training_losses_) == 1

    def test_neural_baseline_requires_fit(self):
        detector = get_baseline("Donut", **FAST_NN)
        with pytest.raises(RuntimeError):
            detector.score(np.zeros((20, 3)))

    def test_neural_baseline_window_clamped(self):
        detector = get_baseline("Donut", epochs=1, train_stride=2, window=64)
        rng = np.random.default_rng(0)
        detector.fit(rng.normal(size=(30, 2)))
        assert detector.window <= 30

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            get_baseline("Donut", window=1)
        with pytest.raises(ValueError):
            get_baseline("Donut", epochs=0)

    def test_donut_detects_large_spike(self):
        train, test, labels = spiky_series(spike_size=20.0)
        detector = get_baseline("Donut", epochs=3, train_stride=4, window=16)
        detector.fit(train)
        outcome = detector.evaluate(test, labels)
        assert outcome.result.recall > 0.0

    def test_gdn_learned_adjacency_topk(self):
        dataset = tiny_dataset(seed=3)
        detector = GDN(epochs=1, train_stride=8, window=12, top_k=2)
        detector.fit(dataset.train)
        adjacency = detector.model.learned_adjacency()
        assert adjacency.shape == (5, 5)
        np.testing.assert_allclose(adjacency.sum(axis=1), np.full(5, 2.0))
        np.testing.assert_allclose(np.diag(adjacency), np.zeros(5))

    def test_esg_builds_evolving_graph(self):
        dataset = tiny_dataset(seed=4)
        detector = get_baseline("ESG", epochs=1, train_stride=10, window=10)
        detector.fit(dataset.train)
        detector.score(dataset.test[:30])
        adjacency = detector.model.last_adjacency
        assert adjacency.shape == (5, 5)
        assert (adjacency >= 0).all() and (adjacency <= 1).all()


class TestTimesNetPeriods:
    def test_dominant_period_of_pure_sinusoid(self):
        t = np.arange(128)
        signal = np.sin(2 * np.pi * t / 16)
        periods = dominant_periods(signal, top_k=1)
        assert abs(periods[0] - 16) <= 2

    def test_dominant_periods_multivariate(self):
        t = np.arange(64)
        window = np.stack([np.sin(2 * np.pi * t / 8), np.sin(2 * np.pi * t / 8 + 1.0)], axis=1)
        periods = dominant_periods(window, top_k=2)
        assert all(2 <= p <= 64 for p in periods)

    def test_constant_signal_falls_back_to_window_length(self):
        assert dominant_periods(np.ones(32), top_k=1)[0] >= 2
