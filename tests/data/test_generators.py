"""Unit tests for signal generators, anomaly templates and noise injectors."""

import numpy as np
import pytest

from repro.data import (
    ANOMALY_TYPES,
    NOISE_TYPES,
    brightening_noise,
    darkening_noise,
    drift_noise,
    eclipse_template,
    eclipsing_binary_star,
    flare_template,
    gaussian_star,
    inject_anomaly,
    inject_concurrent_noise,
    microlensing_template,
    nova_template,
    random_anomaly,
    sample_period,
    sinusoidal_star,
    supernova_template,
    trended_star,
)

RNG = np.random.default_rng(0)


class TestBaseSignals:
    def test_gaussian_star_statistics(self):
        curve = gaussian_star(5000, np.random.default_rng(1), std=0.2)
        assert abs(curve.mean()) < 0.02
        assert abs(curve.std() - 0.2) < 0.02

    def test_gaussian_star_rejects_bad_length(self):
        with pytest.raises(ValueError):
            gaussian_star(0, RNG)

    def test_sinusoidal_star_amplitude(self):
        curve = sinusoidal_star(2000, np.random.default_rng(2), period=100, amplitude=2.0, noise_std=0.0)
        assert abs(curve.max() - 2.0) < 0.01
        assert abs(curve.min() + 2.0) < 0.01

    def test_sinusoidal_star_periodicity(self):
        curve = sinusoidal_star(600, np.random.default_rng(3), period=150, amplitude=2.0, noise_std=0.0, phase=0.0)
        np.testing.assert_allclose(curve[:300], curve[300:], atol=1e-9)

    def test_sample_period_range(self):
        periods = [sample_period(RNG) for _ in range(100)]
        assert all(100 <= p <= 300 for p in periods)

    def test_sample_period_invalid_range(self):
        with pytest.raises(ValueError):
            sample_period(RNG, low=10, high=5)

    def test_eclipsing_binary_has_dips(self):
        curve = eclipsing_binary_star(1000, np.random.default_rng(4), period=100, depth=1.5, noise_std=0.0)
        assert curve.min() == pytest.approx(-1.5)
        assert (curve == -1.5).sum() > 50

    def test_eclipsing_binary_invalid_fraction(self):
        with pytest.raises(ValueError):
            eclipsing_binary_star(100, RNG, eclipse_fraction=0.9)

    def test_trended_star_has_trend(self):
        curve = trended_star(1000, np.random.default_rng(5), slope=0.01, noise_std=0.0)
        assert curve[-1] - curve[0] == pytest.approx(0.01 * 999)


class TestAnomalyTemplates:
    def test_flare_shape(self):
        template = flare_template(50, amplitude=2.0)
        assert len(template) == 50
        assert template.max() == pytest.approx(2.0, rel=0.05)
        # The flare peaks early (fast rise, slow decay).
        assert np.argmax(template) < 15

    def test_flare_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            flare_template(1)
        with pytest.raises(ValueError):
            flare_template(10, amplitude=-1.0)

    def test_microlensing_symmetric(self):
        template = microlensing_template(51, amplitude=1.0)
        np.testing.assert_allclose(template, template[::-1], atol=1e-9)
        assert template.max() == pytest.approx(1.0)

    def test_eclipse_is_a_dip(self):
        template = eclipse_template(30, depth=1.5)
        assert template.min() == pytest.approx(-1.5)
        assert template.max() <= 0.0

    def test_nova_fast_rise_slow_decline(self):
        template = nova_template(60, amplitude=3.0)
        assert template.max() == pytest.approx(3.0, rel=0.05)
        assert np.argmax(template) < 10

    def test_supernova_peak_position(self):
        template = supernova_template(60, amplitude=2.5, peak_fraction=0.3)
        assert 10 < np.argmax(template) < 30

    def test_all_templates_have_requested_length(self):
        for name, maker in ANOMALY_TYPES.items():
            assert len(maker(37)) == 37, name

    def test_random_anomaly_respects_ranges(self):
        for _ in range(20):
            kind, template = random_anomaly(RNG, length_range=(10, 20), amplitude_range=(1.0, 2.0))
            assert kind in ANOMALY_TYPES
            assert 10 <= len(template) <= 20
            assert np.abs(template).max() <= 2.0 * 1.2

    def test_inject_anomaly_marks_labels(self):
        series = np.zeros((100, 3))
        labels = np.zeros((100, 3), dtype=np.int64)
        injection = inject_anomaly(series, labels, variate=1, start=10, template=np.ones(5), kind="flare")
        assert labels[10:15, 1].all()
        assert labels.sum() == 5
        assert series[12, 1] == 1.0
        assert injection.end == 15

    def test_inject_anomaly_out_of_range(self):
        series = np.zeros((10, 2))
        labels = np.zeros((10, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            inject_anomaly(series, labels, variate=0, start=8, template=np.ones(5))
        with pytest.raises(ValueError):
            inject_anomaly(series, labels, variate=5, start=0, template=np.ones(5))


class TestConcurrentNoise:
    def test_drift_noise_constant(self):
        noise = drift_noise(10, magnitude=1.5, direction=-1)
        np.testing.assert_allclose(noise, np.full(10, -1.5))

    def test_drift_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            drift_noise(10, direction=0)

    def test_darkening_dips_and_recovers(self):
        noise = darkening_noise(21, depth=2.0)
        assert noise.min() == pytest.approx(-2.0)
        assert noise[0] == pytest.approx(0.0, abs=1e-9)
        assert noise[-1] == pytest.approx(0.0, abs=1e-9)

    def test_brightening_monotone_increase(self):
        noise = brightening_noise(30, scale=1.5)
        assert (np.diff(noise) >= 0).all()
        assert noise[-1] == pytest.approx(1.5)

    def test_noise_types_registry(self):
        assert set(NOISE_TYPES) == {"drift", "darkening", "brightening"}

    def test_inject_concurrent_noise_affects_selected_variates(self):
        series = np.zeros((100, 6))
        mask = np.zeros((100, 6), dtype=np.int64)
        event = inject_concurrent_noise(
            series, mask, np.random.default_rng(0), start=20, length=30,
            variates=[1, 3, 5], kind="darkening", intensity=1.0,
        )
        assert set(event.variates) == {1, 3, 5}
        assert mask[20:50, [1, 3, 5]].all()
        assert mask[:, [0, 2, 4]].sum() == 0
        assert np.abs(series[20:50, 1]).max() > 0.5

    def test_inject_concurrent_noise_simultaneous_fluctuation(self):
        series = np.zeros((60, 4))
        mask = np.zeros((60, 4), dtype=np.int64)
        inject_concurrent_noise(series, mask, np.random.default_rng(1), start=10, length=40,
                                variates=[0, 1, 2, 3], kind="darkening", intensity=1.0)
        # All affected stars dip at the same time (correlation close to 1).
        correlation = np.corrcoef(series[10:50].T)
        assert correlation.min() > 0.95

    def test_inject_concurrent_noise_validation(self):
        series = np.zeros((20, 2))
        mask = np.zeros((20, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            inject_concurrent_noise(series, mask, RNG, start=15, length=10, variates=[0], kind="drift")
        with pytest.raises(ValueError):
            inject_concurrent_noise(series, mask, RNG, start=0, length=5, variates=[], kind="drift")
        with pytest.raises(ValueError):
            inject_concurrent_noise(series, mask, RNG, start=0, length=5, variates=[0], kind="fog")
