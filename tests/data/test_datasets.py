"""Unit tests for dataset containers, preset generators, windows and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ASTROSET_PRESETS,
    AstroDataset,
    GwacConfig,
    MinMaxScaler,
    StandardScaler,
    SYNTHETIC_PRESETS,
    SyntheticConfig,
    WindowDataset,
    dataset_statistics,
    fill_missing,
    format_statistics_table,
    generate_gwac,
    generate_synthetic,
    load_astroset,
    load_synthetic,
    sliding_windows,
    statistics_table,
    train_test_split,
)


def _tiny_dataset():
    rng = np.random.default_rng(0)
    train = rng.normal(size=(50, 3))
    test = rng.normal(size=(40, 3))
    labels = np.zeros((40, 3), dtype=np.int64)
    labels[5:10, 1] = 1
    noise = np.zeros((40, 3), dtype=np.int64)
    noise[20:30, [0, 2]] = 1
    return AstroDataset("tiny", train, test, labels, noise)


class TestAstroDataset:
    def test_basic_properties(self):
        ds = _tiny_dataset()
        assert ds.num_variates == 3
        assert ds.train_length == 50
        assert ds.test_length == 40
        assert ds.anomaly_rate == pytest.approx(5 / 120)
        assert ds.noise_rate == pytest.approx(20 / 120)
        assert ds.anomaly_to_noise_ratio == pytest.approx(0.25)

    def test_anomaly_segments(self):
        segments = _tiny_dataset().anomaly_segments()
        assert segments == [(1, 5, 10)]

    def test_noise_affected_variates(self):
        assert _tiny_dataset().noise_affected_variates() == 2

    def test_summary_keys(self):
        summary = _tiny_dataset().summary()
        assert {"dataset", "train", "test", "variates", "anomaly_pct", "noise_pct", "a_n_ratio"} <= set(summary)

    def test_default_timestamps(self):
        ds = _tiny_dataset()
        np.testing.assert_allclose(ds.train_timestamps, np.arange(50))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AstroDataset("bad", np.zeros((10, 2)), np.zeros((10, 3)), np.zeros((10, 3)), np.zeros((10, 3)))
        with pytest.raises(ValueError):
            AstroDataset("bad", np.zeros((10, 2)), np.zeros((10, 2)), np.zeros((5, 2)), np.zeros((10, 2)))

    def test_zero_noise_an_ratio(self):
        ds = AstroDataset(
            "nz", np.zeros((10, 2)), np.zeros((10, 2)),
            np.ones((10, 2), dtype=np.int64), np.zeros((10, 2), dtype=np.int64),
        )
        assert ds.anomaly_to_noise_ratio == float("inf")

    def test_train_test_split(self):
        series = np.arange(20.0).reshape(10, 2)
        labels = np.zeros((10, 2), dtype=np.int64)
        noise = np.zeros((10, 2), dtype=np.int64)
        train, test, test_labels, test_noise = train_test_split(series, labels, noise, train_fraction=0.6)
        assert len(train) == 6
        assert len(test) == 4
        with pytest.raises(ValueError):
            train_test_split(series, labels, noise, train_fraction=1.5)


class TestSyntheticGenerator:
    def test_presets_exist(self):
        assert set(SYNTHETIC_PRESETS) == {"SyntheticMiddle", "SyntheticHigh", "SyntheticLow"}

    def test_generate_shapes(self):
        config = SyntheticConfig(num_variates=8, train_length=200, test_length=150,
                                 num_noise_events=3, num_anomaly_segments=2, seed=1)
        ds = generate_synthetic(config)
        assert ds.train.shape == (200, 8)
        assert ds.test.shape == (150, 8)
        assert ds.test_labels.shape == (150, 8)

    def test_anomalies_only_in_test(self):
        ds = load_synthetic("SyntheticMiddle", scale=0.05)
        assert ds.test_labels.sum() > 0

    def test_noise_present_in_train_and_test(self):
        ds = load_synthetic("SyntheticMiddle", scale=0.05)
        assert ds.train_noise_mask.sum() > 0
        assert ds.test_noise_mask.sum() > 0

    def test_noise_variates_subset(self):
        ds = load_synthetic("SyntheticMiddle", scale=0.05)
        noise_variates = set(ds.metadata["noise_variates"])
        affected = set(np.flatnonzero(ds.test_noise_mask.sum(axis=0) > 0).tolist())
        assert affected <= noise_variates

    def test_high_has_more_anomaly_segments_than_middle(self):
        middle = load_synthetic("SyntheticMiddle", scale=0.1)
        high = load_synthetic("SyntheticHigh", scale=0.1)
        assert len(high.anomaly_segments()) >= len(middle.anomaly_segments())

    def test_low_has_more_noise_than_middle(self):
        middle = load_synthetic("SyntheticMiddle", scale=0.1, seed=42)
        low = load_synthetic("SyntheticLow", scale=0.1, seed=42)
        assert low.noise_rate > middle.noise_rate

    def test_reproducible_with_seed(self):
        a = load_synthetic("SyntheticMiddle", scale=0.05, seed=3)
        b = load_synthetic("SyntheticMiddle", scale=0.05, seed=3)
        np.testing.assert_allclose(a.train, b.train)
        np.testing.assert_allclose(a.test, b.test)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            load_synthetic("SyntheticUltra")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_synthetic("SyntheticMiddle", scale=0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_variates=1)
        with pytest.raises(ValueError):
            SyntheticConfig(noise_kinds=("sparkles",))


class TestGwacGenerator:
    def test_presets_exist(self):
        assert set(ASTROSET_PRESETS) == {"AstrosetMiddle", "AstrosetHigh", "AstrosetLow"}

    def test_generate_shapes_and_irregular_times(self):
        config = GwacConfig(num_variates=6, train_length=150, test_length=100,
                            num_noise_events=2, num_anomaly_segments=2, seed=2)
        ds = generate_gwac(config)
        assert ds.train.shape == (150, 6)
        intervals = np.diff(ds.train_timestamps)
        assert (intervals > 0).all()
        assert intervals.std() > 0  # irregular cadence

    def test_noise_touches_most_variates(self):
        ds = load_astroset("AstrosetMiddle", scale=0.05)
        assert ds.noise_affected_variates() >= ds.num_variates * 0.5

    def test_anomaly_segments_rare(self):
        ds = load_astroset("AstrosetHigh", scale=0.05)
        assert 1 <= len(ds.anomaly_segments()) <= 6

    def test_reproducible(self):
        a = load_astroset("AstrosetLow", scale=0.05)
        b = load_astroset("AstrosetLow", scale=0.05)
        np.testing.assert_allclose(a.test, b.test)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_astroset("AstrosetHuge")

    def test_metadata_documents_substitution(self):
        ds = load_astroset("AstrosetMiddle", scale=0.05)
        assert "simulator" in ds.metadata["source"]


class TestStatistics:
    def test_statistics_table_rows(self):
        rows = statistics_table([_tiny_dataset()])
        assert len(rows) == 1
        assert rows[0]["dataset"] == "tiny"

    def test_format_statistics_table(self):
        text = format_statistics_table(statistics_table([_tiny_dataset()]))
        assert "tiny" in text
        assert "Anomaly%" in text

    def test_dataset_statistics_matches_summary(self):
        ds = _tiny_dataset()
        assert dataset_statistics(ds) == ds.summary()


class TestWindows:
    def test_sliding_windows_shape(self):
        series = np.arange(20.0).reshape(10, 2)
        windows = sliding_windows(series, window=4)
        assert windows.shape == (7, 4, 2)

    def test_sliding_windows_stride(self):
        windows = sliding_windows(np.arange(10.0), window=4, stride=2)
        assert windows.shape == (4, 4)
        np.testing.assert_allclose(windows[1], [2, 3, 4, 5])

    def test_sliding_windows_validation(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3.0), window=5)
        with pytest.raises(ValueError):
            sliding_windows(np.arange(5.0), window=0)

    def test_window_dataset_instances(self):
        series = np.arange(40.0).reshape(20, 2)
        wd = WindowDataset(series, window=8, short_window=3)
        assert len(wd) == 13
        long, short, long_times, short_times, end = wd.instance(0)
        assert long.shape == (2, 8)
        assert short.shape == (2, 3)
        assert end == 7
        np.testing.assert_allclose(short[:, -1], series[7])

    def test_window_dataset_batches_cover_everything(self):
        series = np.random.default_rng(0).normal(size=(30, 3))
        wd = WindowDataset(series, window=10, short_window=4)
        ends = []
        for batch in wd.batches(batch_size=4):
            assert batch.long.shape[1:] == (3, 10)
            assert batch.short.shape[1:] == (3, 4)
            ends.extend(batch.end_indices.tolist())
        assert sorted(ends) == list(range(9, 30))

    def test_window_dataset_shuffle_reproducible(self):
        series = np.random.default_rng(0).normal(size=(30, 2))
        wd = WindowDataset(series, window=5, short_window=2)
        ends1 = [b.end_indices.tolist() for b in wd.batches(4, shuffle=True, rng=np.random.default_rng(1))]
        ends2 = [b.end_indices.tolist() for b in wd.batches(4, shuffle=True, rng=np.random.default_rng(1))]
        assert ends1 == ends2

    def test_window_dataset_validation(self):
        series = np.zeros((10, 2))
        with pytest.raises(ValueError):
            WindowDataset(series, window=4, short_window=6)
        with pytest.raises(ValueError):
            WindowDataset(series, window=20, short_window=2)
        with pytest.raises(ValueError):
            WindowDataset(np.zeros(10), window=4, short_window=2)


class TestPreprocessing:
    def test_minmax_scaler_range(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 4)) * 5 + 3
        scaler = MinMaxScaler()
        scaled = scaler.fit_transform(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_minmax_inverse_roundtrip(self):
        data = np.random.default_rng(1).normal(size=(50, 3))
        scaler = MinMaxScaler()
        np.testing.assert_allclose(scaler.inverse_transform(scaler.fit_transform(data)), data, atol=1e-9)

    def test_minmax_requires_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((3, 2)))

    def test_minmax_constant_column(self):
        data = np.ones((10, 2))
        scaled = MinMaxScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_standard_scaler_stats(self):
        data = np.random.default_rng(2).normal(size=(200, 3)) * 4 + 7
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), np.ones(3), atol=1e-9)

    def test_standard_scaler_roundtrip(self):
        data = np.random.default_rng(3).normal(size=(50, 2))
        scaler = StandardScaler()
        np.testing.assert_allclose(scaler.inverse_transform(scaler.fit_transform(data)), data, atol=1e-9)

    def test_fill_missing_interpolate(self):
        column = np.array([1.0, np.nan, 3.0, np.nan, np.nan, 6.0])
        filled = fill_missing(column)
        np.testing.assert_allclose(filled, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])

    def test_fill_missing_zero_and_mean(self):
        data = np.array([[1.0, np.nan], [np.nan, 4.0]])
        np.testing.assert_allclose(fill_missing(data, method="zero")[1, 0], 0.0)
        np.testing.assert_allclose(fill_missing(data, method="mean")[0, 1], 4.0)

    def test_fill_missing_all_nan_column(self):
        data = np.full((5, 1), np.nan)
        np.testing.assert_allclose(fill_missing(data), np.zeros((5, 1)))

    def test_fill_missing_unknown_method(self):
        with pytest.raises(ValueError):
            fill_missing(np.zeros(3), method="magic")


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=60, max_value=150),
    st.integers(min_value=0, max_value=10_000),
)
def test_synthetic_dataset_invariants(num_variates, length, seed):
    """Property test: any generated dataset satisfies the structural invariants."""
    config = SyntheticConfig(
        num_variates=num_variates,
        train_length=length,
        test_length=length,
        num_noise_events=2,
        num_anomaly_segments=2,
        seed=seed,
    )
    ds = generate_synthetic(config)
    assert ds.train.shape == (length, num_variates)
    assert ds.test.shape == (length, num_variates)
    assert set(np.unique(ds.test_labels)) <= {0, 1}
    assert set(np.unique(ds.test_noise_mask)) <= {0, 1}
    assert np.isfinite(ds.train).all()
    assert np.isfinite(ds.test).all()
    assert ds.test_labels.sum() > 0
    assert 0.0 <= ds.anomaly_rate <= 1.0
    assert 0.0 <= ds.noise_rate <= 1.0


class TestWindowSubsets:
    def test_subset_selects_windows_without_copying_series(self):
        series = np.arange(40.0).reshape(20, 2)
        wd = WindowDataset(series, window=8, short_window=3)
        sub = wd.subset(np.array([0, 2, 5]))
        assert len(sub) == 3
        assert sub.series is wd.series
        np.testing.assert_array_equal(sub.end_indices, [7, 9, 12])
        long, _, _, _, end = sub.instance(1)
        np.testing.assert_allclose(long, series[2:10].T)
        assert end == 9

    def test_subset_validates_indices(self):
        wd = WindowDataset(np.zeros((20, 2)), window=8, short_window=3)
        with pytest.raises(IndexError):
            wd.subset(np.array([99]))
        with pytest.raises(ValueError):
            wd.subset(np.zeros((2, 2), dtype=np.int64))

    def test_split_is_chronological(self):
        wd = WindowDataset(np.zeros((30, 2)), window=8, short_window=3)
        train, holdout = wd.split(0.25)
        assert len(holdout) == int(np.ceil(0.25 * len(wd)))
        assert len(train) + len(holdout) == len(wd)
        # Every training window ends strictly before every holdout window.
        assert train.end_indices.max() < holdout.end_indices.min()

    def test_split_zero_fraction_returns_everything_in_train(self):
        wd = WindowDataset(np.zeros((30, 2)), window=8, short_window=3)
        train, holdout = wd.split(0.0)
        assert len(train) == len(wd) and len(holdout) == 0

    def test_split_must_leave_training_windows(self):
        wd = WindowDataset(np.zeros((9, 2)), window=8, short_window=3)
        with pytest.raises(ValueError):
            wd.split(0.99)
        with pytest.raises(ValueError):
            wd.split(1.0)
