"""Tests for the assembled AERO model, the two-stage trainer, the detector and variants."""

import numpy as np
import pytest

from repro.core import (
    ABLATION_VARIANTS,
    AeroConfig,
    AeroDetector,
    AeroModel,
    AeroTrainer,
    EarlyStopping,
    VARIANT_LABELS,
    build_variant,
)
from repro.data import SyntheticConfig, generate_synthetic
from repro.data.windows import WindowDataset
from repro.nn import save_module, load_module

RNG = np.random.default_rng(0)
FAST = AeroConfig.fast(window=20, short_window=6).scaled(
    max_epochs_stage1=2, max_epochs_stage2=2, train_stride=6, batch_size=8, d_model=8, num_heads=2
)


def tiny_dataset(seed=11):
    config = SyntheticConfig(
        num_variates=6,
        train_length=120,
        test_length=120,
        num_noise_events=2,
        num_anomaly_segments=2,
        noise_variate_fraction=0.7,
        seed=seed,
    )
    return generate_synthetic(config)


@pytest.fixture(scope="module")
def fitted_detector():
    dataset = tiny_dataset()
    detector = AeroDetector(FAST)
    detector.fit(dataset.train)
    return detector, dataset


class TestAeroModel:
    def test_forward_result_shapes(self):
        model = AeroModel(FAST, num_variates=4)
        result = model(RNG.normal(size=(3, 4, 20)), RNG.normal(size=(3, 4, 6)))
        assert result.reconstruction.shape == (3, 4, 6)
        assert result.errors.shape == (3, 4, 6)
        assert result.noise_reconstruction.shape == (3, 4, 6)
        assert result.residual.shape == (3, 4, 6)
        assert result.scores.shape == (3, 4)

    def test_scores_are_non_negative(self):
        model = AeroModel(FAST, num_variates=3)
        result = model(RNG.normal(size=(2, 3, 20)), RNG.normal(size=(2, 3, 6)))
        assert (result.scores >= 0).all()

    def test_disabling_both_modules_rejected(self):
        with pytest.raises(ValueError):
            AeroModel(FAST, num_variates=3, use_temporal=False, use_noise_module=False)

    def test_temporal_only_variant(self):
        model = AeroModel(FAST, num_variates=3, use_noise_module=False)
        result = model(RNG.normal(size=(1, 3, 20)), RNG.normal(size=(1, 3, 6)))
        np.testing.assert_allclose(result.noise_reconstruction, 0.0)

    def test_noise_only_variant(self):
        model = AeroModel(FAST, num_variates=3, use_temporal=False)
        result = model(RNG.normal(size=(1, 3, 20)), RNG.normal(size=(1, 3, 6)))
        np.testing.assert_allclose(result.reconstruction, 0.0)

    def test_disabled_module_raises_on_direct_call(self):
        model = AeroModel(FAST, num_variates=3, use_noise_module=False)
        with pytest.raises(RuntimeError):
            model.noise_forward(np.zeros((1, 3, 6)), np.zeros((1, 3, 6)))

    def test_state_dict_roundtrip(self, tmp_path):
        model = AeroModel(FAST, num_variates=3)
        path = save_module(model, tmp_path / "aero.npz")
        clone = AeroModel(FAST.scaled(seed=99), num_variates=3)
        load_module(clone, path)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.step(1.0)
        assert not stopper.step(1.0)
        assert stopper.step(1.0)

    def test_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        stopper.step(1.0)
        stopper.step(1.1)
        assert not stopper.step(0.5)
        assert stopper.epochs_without_improvement == 0

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainer:
    def test_two_stage_training_decreases_stage1_loss(self):
        dataset = tiny_dataset(seed=5)
        scaled = (dataset.train - dataset.train.min(axis=0)) / (np.ptp(dataset.train, axis=0) + 1e-9)
        config = FAST.scaled(max_epochs_stage1=4, max_epochs_stage2=2, learning_rate=5e-3)
        model = AeroModel(config, num_variates=dataset.num_variates)
        windows = WindowDataset(scaled, config.window, config.short_window, stride=config.train_stride)
        history = AeroTrainer(config).train(model, windows)
        assert history.stage1_epochs >= 2
        assert history.stage2_epochs >= 1
        assert history.stage1_losses[-1] <= history.stage1_losses[0]

    def test_training_skips_disabled_stage(self):
        dataset = tiny_dataset(seed=6)
        model = AeroModel(FAST, num_variates=dataset.num_variates, use_noise_module=False)
        windows = WindowDataset(dataset.train, FAST.window, FAST.short_window, stride=FAST.train_stride)
        history = AeroTrainer(FAST).train(model, windows)
        assert history.stage2_epochs == 0

    def test_model_left_in_eval_mode(self):
        dataset = tiny_dataset(seed=7)
        model = AeroModel(FAST, num_variates=dataset.num_variates)
        windows = WindowDataset(dataset.train, FAST.window, FAST.short_window, stride=FAST.train_stride)
        AeroTrainer(FAST).train(model, windows)
        assert not model.training


class TestAeroDetector:
    def test_fit_score_detect_shapes(self, fitted_detector):
        detector, dataset = fitted_detector
        scores = detector.score(dataset.test)
        labels = detector.detect(dataset.test)
        assert scores.shape == dataset.test.shape
        assert labels.shape == dataset.test.shape
        assert set(np.unique(labels)) <= {0, 1}
        assert (scores >= 0).all()

    def test_train_scores_available_after_fit(self, fitted_detector):
        detector, dataset = fitted_detector
        assert detector.train_scores_.shape == dataset.train.shape
        assert np.isfinite(detector.threshold())

    def test_evaluate_returns_report(self, fitted_detector):
        detector, dataset = fitted_detector
        report = detector.evaluate(dataset.test, dataset.test_labels)
        assert 0.0 <= report.outcome.result.f1 <= 1.0
        assert report.test_scores.shape == dataset.test.shape
        assert report.history is detector.history

    def test_learned_graph_shape(self, fitted_detector):
        detector, dataset = fitted_detector
        detector.score(dataset.test[:60])
        graph = detector.learned_graph()
        assert graph.shape == (dataset.num_variates, dataset.num_variates)

    def test_unfitted_detector_raises(self):
        detector = AeroDetector(FAST)
        with pytest.raises(RuntimeError):
            detector.score(np.zeros((30, 3)))
        with pytest.raises(RuntimeError):
            detector.threshold()

    def test_rejects_non_2d_input(self, fitted_detector):
        detector, _ = fitted_detector
        with pytest.raises(ValueError):
            detector.score(np.zeros(10))

    def test_window_clamped_to_short_series(self):
        config = AeroConfig.fast(window=40, short_window=12).scaled(
            max_epochs_stage1=1, max_epochs_stage2=1, d_model=8, num_heads=2, train_stride=4
        )
        detector = AeroDetector(config)
        rng = np.random.default_rng(1)
        detector.fit(rng.normal(size=(25, 3)))
        assert detector.config.window <= 25
        scores = detector.score(rng.normal(size=(30, 3)))
        assert scores.shape == (30, 3)

    def test_irregular_timestamps_accepted(self):
        dataset = tiny_dataset(seed=8)
        times = np.cumsum(np.random.default_rng(0).exponential(15.0, size=dataset.train_length))
        detector = AeroDetector(FAST)
        detector.fit(dataset.train, times)
        test_times = times[-1] + np.cumsum(
            np.random.default_rng(1).exponential(15.0, size=dataset.test_length)
        )
        scores = detector.score(dataset.test, test_times)
        assert np.isfinite(scores).all()


class TestVariants:
    def test_registry_complete(self):
        assert set(ABLATION_VARIANTS) == {
            "full",
            "no_temporal",
            "no_univariate_input",
            "no_short_window",
            "no_noise_module",
            "no_noise_multivariate",
            "static_graph",
            "dynamic_graph",
        }
        assert set(VARIANT_LABELS) == set(ABLATION_VARIANTS)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            build_variant("no_everything")

    def test_variant_flags(self):
        assert build_variant("no_temporal", FAST).use_temporal is False
        assert build_variant("no_univariate_input", FAST).multivariate_input is True
        assert build_variant("static_graph", FAST).graph_mode == "static"
        assert build_variant("dynamic_graph", FAST).graph_mode == "dynamic"
        assert build_variant("no_noise_module", FAST).use_noise_module is False

    @pytest.mark.parametrize("variant", ["no_temporal", "no_noise_module", "static_graph"])
    def test_variants_run_end_to_end(self, variant):
        dataset = tiny_dataset(seed=13)
        detector = build_variant(variant, FAST)
        detector.fit(dataset.train)
        report = detector.evaluate(dataset.test, dataset.test_labels)
        assert 0.0 <= report.outcome.result.f1 <= 1.0
