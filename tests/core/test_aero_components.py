"""Unit tests for AERO's components: config, time embedding, temporal module,
graph learning and the concurrent-noise reconstruction module."""

import numpy as np
import pytest

from repro.core import (
    AeroConfig,
    ConcurrentNoiseReconstructionModule,
    TemporalReconstructionModule,
    TimeEmbedding,
    batch_window_adjacency,
    noise_ground_truth_graph,
    static_complete_adjacency,
    window_wise_adjacency,
)
from repro.nn import Tensor, mse_loss

RNG = np.random.default_rng(0)
FAST = AeroConfig.fast(window=20, short_window=6)


class TestAeroConfig:
    def test_paper_defaults(self):
        config = AeroConfig.paper()
        assert config.window == 200
        assert config.short_window == 60
        assert config.num_heads == 4
        assert config.num_encoder_layers == 1
        assert config.learning_rate == pytest.approx(1e-3)
        assert config.pot_level == pytest.approx(0.99)
        assert config.pot_q == pytest.approx(1e-3)

    def test_fast_profile_is_valid(self):
        config = AeroConfig.fast()
        assert config.short_window < config.window

    def test_scaled_override(self):
        config = AeroConfig.fast().scaled(d_model=32)
        assert config.d_model == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            AeroConfig(window=10, short_window=20)
        with pytest.raises(ValueError):
            AeroConfig(d_model=10, num_heads=3)
        with pytest.raises(ValueError):
            AeroConfig(conditioning="inverted")
        with pytest.raises(ValueError):
            AeroConfig(window=10, short_window=10, conditioning="masked")
        with pytest.raises(ValueError):
            AeroConfig(pot_level=2.0)


class TestTimeEmbedding:
    def test_output_shape(self):
        embedding = TimeEmbedding(d_model=8)
        out = embedding(np.arange(10.0))
        assert out.shape == (10, 8)

    def test_batched_output_shape(self):
        embedding = TimeEmbedding(d_model=8)
        out = embedding(np.tile(np.arange(5.0), (3, 1)))
        assert out.shape == (3, 5, 8)

    def test_bounded_values(self):
        embedding = TimeEmbedding(d_model=8)
        out = embedding(np.arange(50.0) * 13.0)
        assert np.abs(out.data).max() <= 2.0 + 1e-9

    def test_irregular_intervals_change_embedding(self):
        embedding = TimeEmbedding(d_model=8)
        regular = embedding(np.arange(6.0)).data
        irregular = embedding(np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0])).data
        assert not np.allclose(regular, irregular)

    def test_position_offset_changes_embedding(self):
        embedding = TimeEmbedding(d_model=8)
        base = embedding(np.arange(4.0)).data
        shifted = embedding(np.arange(4.0), position_offset=10).data
        assert not np.allclose(base, shifted)

    def test_alpha_is_learnable(self):
        embedding = TimeEmbedding(d_model=4)
        out = embedding(np.arange(5.0))
        out.sum().backward()
        assert embedding.alpha.grad is not None

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            TimeEmbedding(0)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            TimeEmbedding(4)(np.zeros((2, 3, 4)))


class TestTemporalReconstructionModule:
    def test_output_shape_masked(self):
        module = TemporalReconstructionModule(FAST, rng=RNG)
        out = module(RNG.normal(size=(2, 3, 20)), RNG.normal(size=(2, 3, 6)))
        assert out.shape == (2, 3, 6)

    def test_output_shape_full_conditioning(self):
        config = FAST.scaled(conditioning="full")
        module = TemporalReconstructionModule(config, rng=RNG)
        out = module(RNG.normal(size=(2, 3, 20)), RNG.normal(size=(2, 3, 6)))
        assert out.shape == (2, 3, 6)

    def test_output_in_unit_interval(self):
        module = TemporalReconstructionModule(FAST, rng=RNG)
        out = module(RNG.normal(size=(1, 2, 20)), RNG.normal(size=(1, 2, 6)))
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_multivariate_input_variant(self):
        module = TemporalReconstructionModule(FAST, multivariate_input=True, num_variates=3, rng=RNG)
        out = module(RNG.normal(size=(2, 3, 20)), RNG.normal(size=(2, 3, 6)))
        assert out.shape == (2, 3, 6)

    def test_multivariate_requires_num_variates(self):
        with pytest.raises(ValueError):
            TemporalReconstructionModule(FAST, multivariate_input=True)

    def test_no_short_window_variant_reconstructs_full_window(self):
        module = TemporalReconstructionModule(FAST, use_short_window=False, rng=RNG)
        out = module(RNG.normal(size=(1, 2, 20)), RNG.normal(size=(1, 2, 6)))
        assert out.shape == (1, 2, 20)

    def test_variates_processed_independently(self):
        """In univariate mode, changing one star must not affect another's output."""
        module = TemporalReconstructionModule(FAST, rng=RNG)
        long = RNG.normal(size=(1, 3, 20))
        short = RNG.normal(size=(1, 3, 6))
        base = module(long, short).data
        modified_long = long.copy()
        modified_long[0, 0] += 5.0
        modified = module(modified_long, short).data
        np.testing.assert_allclose(base[0, 1:], modified[0, 1:], atol=1e-9)

    def test_gradients_reach_all_parameters(self):
        module = TemporalReconstructionModule(FAST, rng=RNG)
        out = module(RNG.normal(size=(2, 2, 20)), RNG.normal(size=(2, 2, 6)))
        mse_loss(out, Tensor(np.zeros_like(out.data))).backward()
        grads = [p.grad is not None for _, p in module.named_parameters()]
        # The masked conditioning path does not use the decoder value embedding.
        assert sum(grads) >= len(grads) - 2

    def test_reconstruction_errors_shape(self):
        module = TemporalReconstructionModule(FAST, rng=RNG)
        errors = module.reconstruction_errors(RNG.normal(size=(2, 3, 20)), RNG.normal(size=(2, 3, 6)))
        assert errors.shape == (2, 3, 6)


class TestGraphLearning:
    def test_window_wise_adjacency_identical_errors(self):
        errors = np.tile(RNG.normal(size=(1, 8)), (4, 1))
        adjacency = window_wise_adjacency(errors)
        np.testing.assert_allclose(adjacency, np.ones((4, 4)), atol=1e-9)

    def test_window_wise_adjacency_orthogonal_errors(self):
        errors = np.array([[1.0, 0.0], [0.0, 1.0]])
        adjacency = window_wise_adjacency(errors)
        assert adjacency[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_window_wise_adjacency_symmetric(self):
        adjacency = window_wise_adjacency(RNG.normal(size=(6, 10)))
        np.testing.assert_allclose(adjacency, adjacency.T, atol=1e-12)

    def test_window_wise_adjacency_range(self):
        adjacency = window_wise_adjacency(RNG.normal(size=(6, 10)))
        assert (adjacency >= 0.0).all() and (adjacency <= 1.0).all()

    def test_window_wise_adjacency_allows_negative_when_requested(self):
        errors = np.array([[1.0, 1.0], [-1.0, -1.0]])
        adjacency = window_wise_adjacency(errors, non_negative=False)
        assert adjacency[0, 1] == pytest.approx(-1.0)

    def test_window_wise_adjacency_validation(self):
        with pytest.raises(ValueError):
            window_wise_adjacency(np.zeros(5))

    def test_batch_adjacency_matches_single(self):
        errors = RNG.normal(size=(3, 5, 7))
        batch = batch_window_adjacency(errors)
        for index in range(3):
            np.testing.assert_allclose(batch[index], window_wise_adjacency(errors[index]), atol=1e-12)

    def test_noise_correlation_detected(self):
        """Stars sharing an injected noise shape are strongly connected."""
        shape = np.sin(np.linspace(0, np.pi, 12))
        errors = RNG.normal(size=(6, 12)) * 0.05
        errors[[1, 3, 4]] += shape
        adjacency = window_wise_adjacency(errors)
        affected = adjacency[np.ix_([1, 3, 4], [1, 3, 4])]
        off_diag = affected[~np.eye(3, dtype=bool)]
        assert off_diag.min() > 0.8
        assert adjacency[1, 0] < 0.7

    def test_static_complete_adjacency(self):
        adjacency = static_complete_adjacency(4)
        np.testing.assert_allclose(adjacency, np.ones((4, 4)))
        with pytest.raises(ValueError):
            static_complete_adjacency(0)

    def test_noise_ground_truth_graph(self):
        mask = np.zeros((10, 4), dtype=int)
        mask[2:5, [0, 2]] = 1
        graph = noise_ground_truth_graph(mask)
        assert graph[0, 2] == 1.0
        assert graph[1, 3] == 0.0
        with pytest.raises(ValueError):
            noise_ground_truth_graph(np.zeros(5))


class TestConcurrentNoiseModule:
    def test_output_shape(self):
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, rng=RNG)
        out = module(RNG.normal(size=(2, 4, 6)), RNG.normal(size=(2, 4, 6)))
        assert out.shape == (2, 4, 6)

    def test_last_adjacency_stored(self):
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, rng=RNG)
        module(RNG.normal(size=(1, 5, 6)), RNG.normal(size=(1, 5, 6)))
        assert module.last_adjacency.shape == (5, 5)

    def test_graph_modes(self):
        for mode in ("window", "static", "dynamic"):
            module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, graph_mode=mode, rng=RNG)
            out = module(RNG.normal(size=(2, 3, 6)), RNG.normal(size=(2, 3, 6)))
            assert out.shape == (2, 3, 6)

    def test_invalid_graph_mode(self):
        with pytest.raises(ValueError):
            ConcurrentNoiseReconstructionModule(FAST, graph_mode="random")

    def test_shape_mismatch_rejected(self):
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, rng=RNG)
        with pytest.raises(ValueError):
            module(RNG.normal(size=(1, 3, 6)), RNG.normal(size=(1, 3, 5)))

    def test_correlated_errors_reconstructed_isolated_errors_not(self):
        """The key mechanism: shared noise is explained away, lone anomalies are not."""
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, rng=RNG)
        shape = np.linspace(0.5, 1.5, 6)
        errors = RNG.normal(size=(1, 6, 6)) * 0.01
        errors[0, [0, 1, 2, 3]] += shape          # concurrent noise on 4 stars
        errors[0, 5] += np.array([0.0, 0.0, 0.0, 0.0, 0.0, 2.0])  # lone anomaly spike
        out = module(errors, errors).data
        noise_residual = np.abs(errors[0, 0] - out[0, 0]).mean()
        anomaly_residual = np.abs(errors[0, 5] - out[0, 5])[-1]
        # Shared noise is mostly explained away by the neighbours ...
        assert noise_residual < 0.5 * np.abs(errors[0, 0]).mean()
        # ... while the lone anomaly keeps a much larger share of its error.
        assert anomaly_residual > 3.0 * noise_residual
        assert anomaly_residual > 0.4

    def test_node_scales_validation(self):
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, rng=RNG)
        with pytest.raises(ValueError):
            module.set_node_scales(np.array([1.0, -1.0]))
        module.set_node_scales(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            module(RNG.normal(size=(1, 4, 6)), RNG.normal(size=(1, 4, 6)))

    def test_dynamic_state_reset(self):
        module = ConcurrentNoiseReconstructionModule(FAST, feature_dim=6, graph_mode="dynamic", rng=RNG)
        module(RNG.normal(size=(1, 3, 6)), RNG.normal(size=(1, 3, 6)))
        assert module._dynamic_state is not None
        module.reset_dynamic_state()
        assert module._dynamic_state is None
