"""Replay validation: the fleet must catch injected events under survey mess.

This is the product-level acceptance suite: a seeded night with flares,
microlensing and eclipses buried under NaN gaps, a dropout/rejoin, cadence
jitter, duplicated and out-of-order frames is replayed through the real
serving stack, and the fired alerts are scored against ground truth.

The golden-trace test pins the replay's complete observable behaviour
against a committed npz artifact.  To regenerate it after an *intentional*
behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/simulation/test_replay.py -k golden
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.simulation import ReplayHarness, ReplayTrace, score_replay
from repro.streaming import StreamingService

GOLDEN_PATH = Path(__file__).parent / "golden" / "survey_night_seed7.npz"


@pytest.fixture(scope="module")
def replay(night, make_fleet):
    scenario, detector, threshold = night
    fleet = make_fleet(detector, scenario, threshold)
    report, trace = ReplayHarness(fleet, scenario).run()
    return scenario, report, trace


class TestAcceptance:
    def test_event_recall_at_least_080(self, replay):
        _, report, _ = replay
        assert report.num_events >= 6
        assert report.recall >= 0.8, report.format()

    def test_every_headline_kind_is_caught(self, replay):
        _, report, _ = replay
        for kind in ("flare", "microlensing", "eclipse"):
            detected, total = report.recall_by_kind[kind]
            assert total >= 2
            assert detected >= 1, f"no {kind} detected: {report.format()}"

    def test_false_alerts_on_quiet_stars_are_bounded(self, replay):
        _, report, _ = replay
        assert report.quiet_star_false_alerts <= 2, report.format()

    def test_detection_latency_is_bounded(self, replay):
        _, report, _ = replay
        assert report.latencies.size == report.num_detected
        assert (report.latencies >= 0).all()
        assert report.max_latency <= 20  # ticks from onset, well inside an event

    def test_duplicates_were_deduplicated(self, replay):
        scenario, report, trace = replay
        assert report.duplicates_dropped == scenario.config.num_duplicate_frames
        assert trace.num_ticks == scenario.config.night_length
        # Every exposure was processed exactly once, in arrival order.
        assert sorted(trace.seqs.tolist()) == list(range(scenario.length))

    def test_missing_ticks_emit_nan_scores(self, replay):
        scenario, _, trace = replay
        order = np.argsort(trace.seqs)
        scores = trace.scores[order]
        missing = ~np.isfinite(scenario.exposures)
        assert np.isnan(scores[missing]).all()


class TestDeterminismAndTrace:
    def test_same_seed_same_fleet_bit_identical_trace(self, night, make_fleet):
        scenario, detector, threshold = night
        _, first = ReplayHarness(make_fleet(detector, scenario, threshold), scenario).run()
        _, second = ReplayHarness(make_fleet(detector, scenario, threshold), scenario).run()
        first.assert_matches(second)  # exact: rtol = atol = 0

    def test_trace_round_trips_through_npz(self, replay, tmp_path):
        _, _, trace = replay
        path = trace.save(tmp_path / "trace.npz")
        assert ReplayTrace.load(path).matches(trace)

    def test_diff_pinpoints_a_perturbed_tick(self, replay, tmp_path):
        _, _, trace = replay
        path = trace.save(tmp_path / "trace.npz")
        other = ReplayTrace.load(path)
        other.scores[5, 0, 0] += 1e-3
        mismatches = trace.diff(other)
        assert [m.field for m in mismatches] == ["scores"]
        assert "(5, 0, 0)" in mismatches[0].detail
        with pytest.raises(AssertionError, match="scores"):
            trace.assert_matches(other)

    def test_diff_catches_a_lost_alert(self, replay, tmp_path):
        _, _, trace = replay
        other = ReplayTrace.load(trace.save(tmp_path / "trace.npz"))
        other.alert_stars = other.alert_stars[:-1]
        fields = {m.field for m in trace.diff(other)}
        assert "alert_stars" in fields

    def test_load_rejects_wrong_keys(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, seqs=np.arange(3))
        with pytest.raises(ValueError, match="missing"):
            ReplayTrace.load(path)
        with pytest.raises(FileNotFoundError):
            ReplayTrace.load(tmp_path / "absent.npz")

    def test_golden_trace_pin(self, replay):
        """The committed golden trace still describes today's behaviour.

        Scores/thresholds compare with a small tolerance (BLAS backends may
        wiggle the last float bits across platforms); alert identities,
        labels and tick ordering are compared exactly.
        """
        _, _, trace = replay
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            trace.save(GOLDEN_PATH)
            pytest.skip(f"regenerated golden trace at {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden trace missing at {GOLDEN_PATH}; regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
        golden = ReplayTrace.load(GOLDEN_PATH)
        trace.assert_matches(golden, rtol=1e-6, atol=1e-9)


class TestHarnessModes:
    def test_dedupe_off_processes_duplicate_frames(self, night, make_fleet):
        scenario, detector, threshold = night
        fleet = make_fleet(detector, scenario, threshold)
        report, trace = ReplayHarness(fleet, scenario, dedupe=False).run()
        assert report.duplicates_dropped == 0
        assert trace.num_ticks == len(scenario.arrival)

    def test_harness_accepts_a_streaming_service_facade(self, night, make_fleet):
        """Any step(rows, timestamp) scorer can be driven — here through the
        service queue, exercising the submit/drain path per tick."""
        scenario, detector, threshold = night

        class ServiceFacade:
            def __init__(self, fleet):
                self.service = StreamingService(fleet, max_queue=4)

            def step(self, rows, timestamp):
                assert self.service.submit(rows, timestamp)
                return self.service.drain()[0]

        facade = ServiceFacade(make_fleet(detector, scenario, threshold))
        report, trace = ReplayHarness(facade, scenario).run()
        assert trace.num_ticks == scenario.config.night_length
        assert report.recall >= 0.8
        stats = facade.service.stats()
        assert stats.processed_steps == scenario.config.night_length

    def test_rejects_steppless_fleet(self, night):
        scenario, _, _ = night
        with pytest.raises(TypeError):
            ReplayHarness(object(), scenario)

    def test_score_replay_handles_no_alerts(self, night):
        scenario, _, _ = night
        report = score_replay(scenario, np.empty(0), np.empty(0), grace=10)
        assert report.recall == 0.0 and report.precision == 1.0
        assert report.num_alerts == 0
