"""Unit tests for scenario generation and fault injection (no training)."""

import numpy as np
import pytest

from repro.simulation import (
    ScenarioConfig,
    build_scenario,
    duplicate_arrivals,
    inject_dropout,
    inject_nan_gaps,
    jitter_timestamps,
    render_star_profiles,
    reorder_arrivals,
    sample_star_profiles,
)
from repro.simulation.scenario import StarProfile


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = build_scenario(ScenarioConfig(seed=123))
        b = build_scenario(ScenarioConfig(seed=123))
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.calibration, b.calibration)
        np.testing.assert_array_equal(a.exposures, b.exposures)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
        assert a.arrival == b.arrival
        assert a.events == b.events
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        a = build_scenario(ScenarioConfig(seed=1))
        b = build_scenario(ScenarioConfig(seed=2))
        finite = ~(np.isnan(a.exposures) | np.isnan(b.exposures))
        assert not np.array_equal(a.exposures[finite], b.exposures[finite])


class TestScenarioContents:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ScenarioConfig(seed=7))

    def test_headline_requirements(self, scenario):
        """The acceptance-criteria scenario shape: stars, kinds, gaps, dropout."""
        assert scenario.num_stars >= 8
        kinds = {event.kind for event in scenario.events}
        assert {"flare", "microlensing", "eclipse"} <= kinds
        assert scenario.missing_fraction() >= 0.05
        assert sum(1 for f in scenario.faults if f.kind == "dropout") == 1

    def test_shapes_and_splits(self, scenario):
        config = scenario.config
        assert scenario.train.shape == (config.train_length, config.num_variates)
        assert scenario.calibration.shape == (config.calibration_length, config.num_variates)
        assert scenario.exposures.shape == (
            config.night_length, config.num_shards, config.num_variates
        )
        # The calibration stretch is quiet: fully observed, no events on it.
        assert np.isfinite(scenario.calibration).all()
        assert np.isfinite(scenario.train).all()
        # Timeline splits do not overlap and stay ordered.
        assert scenario.train_timestamps[-1] < scenario.calibration_timestamps[0]
        assert scenario.calibration_timestamps[-1] < scenario.timestamps[0]

    def test_ground_truth_matches_events(self, scenario):
        mask = scenario.ground_truth()
        assert mask.shape == (scenario.length, scenario.num_stars)
        rebuilt = np.zeros_like(mask)
        for event in scenario.events:
            assert 0 <= event.start < event.end <= scenario.length
            assert event.star == event.shard * scenario.config.num_variates + event.variate
            rebuilt[event.start : event.end, event.star] = True
        np.testing.assert_array_equal(mask, rebuilt)

    def test_quiet_stars_host_nothing(self, scenario):
        quiet = set(scenario.quiet_stars.tolist())
        assert quiet, "scenario must keep some quiet stars for the false-alert budget"
        assert quiet.isdisjoint(event.star for event in scenario.events)
        assert quiet.isdisjoint(
            fault.star for fault in scenario.faults if fault.kind in ("drift", "dropout")
        )

    def test_same_star_events_keep_separation(self, scenario):
        margin = scenario.config.event_separation
        by_star = {}
        for event in scenario.events:
            by_star.setdefault(event.star, []).append((event.start, event.end))
        for spans in by_star.values():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                assert next_start - prev_end >= margin

    def test_arrival_schedule_faults(self, scenario):
        config = scenario.config
        assert len(scenario.arrival) == config.night_length + config.num_duplicate_frames
        assert set(scenario.arrival) == set(range(config.night_length))
        frames = scenario.frames()
        assert [frame.seq for frame in frames] == scenario.arrival
        # Reordered delivery: the arrival order is not sorted.
        assert scenario.arrival != sorted(scenario.arrival)

    def test_describe_mentions_the_essentials(self, scenario):
        text = scenario.describe()
        assert "8 stars" in text and "flare" in text and "missing" in text


class TestProfiles:
    def test_rendering_is_phase_continuous(self):
        profile = StarProfile(kind="sinusoidal", period=120.0, phase=0.3, noise_std=0.0)
        rng = np.random.default_rng(0)
        whole = render_star_profiles([profile], 0, 200, rng)
        first = render_star_profiles([profile], 0, 120, rng)
        rest = render_star_profiles([profile], 120, 80, rng)
        np.testing.assert_allclose(np.vstack([first, rest]), whole)

    def test_sample_respects_fraction_extremes(self):
        rng = np.random.default_rng(0)
        all_variable = sample_star_profiles(rng, 16, variable_star_fraction=1.0)
        none_variable = sample_star_profiles(rng, 16, variable_star_fraction=0.0)
        assert all(p.kind == "sinusoidal" for p in all_variable)
        assert all(p.kind == "gaussian" for p in none_variable)

    def test_unknown_profile_kind_rejected(self):
        with pytest.raises(ValueError):
            render_star_profiles(
                [StarProfile(kind="pulsar")], 0, 10, np.random.default_rng(0)
            )


class TestFaultInjectors:
    def test_nan_gaps_reach_target_fraction(self):
        rng = np.random.default_rng(3)
        exposures = np.zeros((200, 2, 4))
        events = inject_nan_gaps(exposures, rng, fraction=0.07)
        assert np.isnan(exposures).mean() >= 0.07
        assert all(event.kind == "nan_gap" for event in events)
        for event in events:
            shard, variate = divmod(event.star, 4)
            assert np.isnan(exposures[event.start : event.end, shard, variate]).all()

    def test_dropout_blanks_one_star_contiguously(self):
        rng = np.random.default_rng(4)
        exposures = np.zeros((200, 2, 4))
        event = inject_dropout(exposures, rng, (30, 50))
        shard, variate = divmod(event.star, 4)
        assert 30 <= event.end - event.start <= 50
        assert np.isnan(exposures[event.start : event.end, shard, variate]).all()
        before = exposures[: event.start, shard, variate]
        after = exposures[event.end :, shard, variate]
        assert np.isfinite(before).all() and np.isfinite(after).all()

    def test_jitter_keeps_time_strictly_increasing(self):
        rng = np.random.default_rng(5)
        base = np.arange(500, dtype=np.float64) * 15.0
        jittered = jitter_timestamps(base, rng, jitter=7.0, cadence=15.0)
        assert (np.diff(jittered) > 0).all()
        assert np.abs(jittered - base).max() <= 7.0

    def test_duplicates_and_reorders(self):
        rng = np.random.default_rng(6)
        arrival = list(range(50))
        dup_events = duplicate_arrivals(arrival, rng, 3)
        assert len(arrival) == 53 and len(dup_events) == 3
        for event in dup_events:
            assert arrival.count(event.start) >= 2
        before = list(arrival)
        reorder_arrivals(arrival, rng, 2)
        assert sorted(arrival) == sorted(before)
        assert arrival != before

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            inject_nan_gaps(np.zeros((10, 1, 1)), rng, fraction=1.5)
        with pytest.raises(ValueError):
            inject_dropout(np.zeros((10, 1, 1)), rng, (20, 30))
        with pytest.raises(ValueError):
            jitter_timestamps(np.zeros(3), rng, jitter=-1.0, cadence=15.0)


class TestConfigValidation:
    def test_rejects_unknown_event_kind(self):
        with pytest.raises(ValueError):
            ScenarioConfig(event_kinds=("flare", "kilonova"))

    def test_rejects_overcrowded_roles(self):
        with pytest.raises(ValueError):
            ScenarioConfig(num_shards=1, num_variates=2, num_quiet_stars=2, num_drift_stars=0)

    def test_rejects_event_longer_than_night(self):
        with pytest.raises(ValueError):
            ScenarioConfig(night_length=60, event_length_range=(16, 80))

    def test_rejects_short_night(self):
        with pytest.raises(ValueError):
            ScenarioConfig(night_length=10)
