"""Shared fixtures for the scenario-replay validation suite.

One survey night (seed 7) and one trained detector are shared by every
test in this package: training is the expensive part, and sharing it keeps
the whole suite inside the CI quick lane.  Everything downstream of the
fixture is deterministic — the scenario is a pure function of its seed and
the detector a pure function of its config and training data — which is
exactly what lets the golden-trace test pin the replay output.
"""

import numpy as np
import pytest

from repro import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.simulation import ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager

GOLDEN_SEED = 7
GOLDEN_POT_Q = 5e-3

#: The golden scenario: 8 stars over 2 shards, all three headline event
#: kinds, >=5% NaN gaps, one dropout/rejoin, jitter, duplicates, reordering.
GOLDEN_SCENARIO = ScenarioConfig(seed=GOLDEN_SEED)

FIXTURE_DETECTOR = AeroConfig.fast(window=32, short_window=8).scaled(
    max_epochs_stage1=16, max_epochs_stage2=8, learning_rate=5e-3,
    d_model=24, num_heads=2, train_stride=2, batch_size=16,
)


@pytest.fixture(scope="session")
def night():
    """``(scenario, detector, threshold)`` for the golden survey night."""
    scenario = build_scenario(GOLDEN_SCENARIO)
    detector = AeroDetector(FIXTURE_DETECTOR)
    detector.fit(scenario.train, scenario.train_timestamps)
    calibration_scores = detector.score(
        scenario.calibration, scenario.calibration_timestamps
    )
    threshold = pot_threshold(calibration_scores, q=GOLDEN_POT_Q)
    assert np.isfinite(threshold)
    return scenario, detector, threshold


def _make_fleet(detector, scenario, threshold) -> FleetManager:
    """A freshly initialised fleet with the golden serving policy."""
    return FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
    )


@pytest.fixture(scope="session")
def make_fleet():
    """Factory fixture: fresh fleets with the golden serving policy."""
    return _make_fleet
