"""Plan verifier tests: the full variant matrix plus corruption diagnostics.

``verify_model`` must (a) pass every ablation variant in both conditioning
modes — covering static/window/dynamic graphs and the full-forward
fallback — without changing a single served score, and (b) turn each way a
plan or state can be corrupted into its *named* diagnostic: wrong dtype,
thawed weight, bad shape chain, aliased workspace, out-of-bounds ring,
diverged mirror halves, mis-laid-out errors workspace, diverging scores.
"""

import numpy as np
import pytest

from repro import AeroConfig
from repro.analysis import (
    PlanVerificationError,
    TrackingArena,
    check_state,
    verify_detector,
    verify_model,
)
from repro.core.variants import ABLATION_VARIANTS, build_variant
from repro.runtime import compile_detector
from repro.runtime.incremental import IncrementalState

NUM_VARIATES = 3
WINDOW = 12
SHORT = 5


def _make_series(num_points: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, NUM_VARIATES)
    t = np.arange(num_points)
    base = 0.5 + 0.3 * np.sin(2.0 * np.pi * t[:, None] / 24.0 + phases[None, :])
    return base + 0.05 * rng.standard_normal((num_points, NUM_VARIATES))


def _fast_config(**overrides) -> AeroConfig:
    settings = dict(
        window=WINDOW,
        short_window=SHORT,
        d_model=8,
        num_heads=2,
        train_stride=4,
        max_epochs_stage1=1,
        max_epochs_stage2=1,
        batch_size=8,
    )
    settings.update(overrides)
    return AeroConfig(**settings)


@pytest.fixture(scope="module")
def train_series() -> np.ndarray:
    return _make_series(90, seed=3)


@pytest.fixture(scope="module")
def compiled_models(train_series):
    """Lazily-trained ``(variant, conditioning) -> CompiledDetector`` cache."""
    cache = {}

    def build(variant: str, conditioning: str = "masked"):
        key = (variant, conditioning)
        if key not in cache:
            detector = build_variant(variant, config=_fast_config(conditioning=conditioning))
            detector.fit(train_series)
            cache[key] = compile_detector(detector)
        return cache[key]

    return build


# ----------------------------------------------------------------------
# the variant matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("conditioning", ["masked", "full"])
@pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
def test_every_variant_verifies_clean(compiled_models, variant, conditioning):
    """All 8 ablations x both conditionings (graph modes ride along:
    ``full`` is window-wise, plus explicit static/dynamic variants)."""
    compiled = compiled_models(variant, conditioning)
    report = verify_detector(compiled)
    assert report.ok, "\n".join(issue.format() for issue in report.issues)
    assert report.layouts == ("stack", "windows")
    assert report.arrays_checked > 0


@pytest.mark.parametrize("variant", ["full", "dynamic_graph", "no_short_window"])
def test_verification_does_not_change_served_scores(compiled_models, train_series, variant):
    """verify=True must be serving-transparent — bitwise, even for the
    dynamic graph's evolving adjacency state."""
    compiled = compiled_models(variant)
    series = train_series[:60]
    before = compiled.score(series)
    verify_detector(compiled).raise_if_failed()
    after = compiled.score(series)
    assert np.array_equal(before, after, equal_nan=True)


def test_compile_detector_verify_flag(compiled_models, train_series):
    detector = build_variant("full", config=_fast_config())
    detector.fit(train_series)
    compiled = compile_detector(detector, verify=True)
    reference = compile_detector(detector)
    series = train_series[:60]
    assert np.array_equal(
        compiled.score(series), reference.score(series), equal_nan=True
    )


# ----------------------------------------------------------------------
# corruption -> named diagnostics
# ----------------------------------------------------------------------
def _freeze_like(array):
    out = np.array(array)
    out.flags.writeable = False
    return out


class TestStructuralDiagnostics:
    def test_wrong_dtype_weight(self, compiled_models):
        compiled = compiled_models("static_graph")
        model = compiled.model
        saved = model.noise.weight
        try:
            model.noise.weight = _freeze_like(saved.astype(np.float32))
            report = verify_model(model, compiled.config)
            assert "dtype-mismatch" in report.kinds()
            assert any("noise.weight" in issue.location for issue in report.issues)
        finally:
            model.noise.weight = saved

    def test_thawed_weight(self, compiled_models):
        compiled = compiled_models("full")
        model = compiled.model
        saved = model.temporal.output_projection_w
        try:
            model.temporal.output_projection_w = np.array(saved)  # writeable copy
            report = verify_model(model, compiled.config)
            assert "mutable-weight" in report.kinds()
        finally:
            model.temporal.output_projection_w = saved

    def test_wrong_shape_chain(self, compiled_models):
        compiled = compiled_models("static_graph")
        model = compiled.model
        saved = model.noise.weight
        try:
            model.noise.weight = _freeze_like(np.asarray(saved)[:-1, :])
            report = verify_model(model, compiled.config)
            assert "shape-mismatch" in report.kinds()
        finally:
            model.noise.weight = saved

    def test_raise_if_failed_names_the_diagnostics(self, compiled_models):
        compiled = compiled_models("static_graph")
        model = compiled.model
        saved = model.noise.weight
        try:
            model.noise.weight = _freeze_like(saved.astype(np.float32))
            with pytest.raises(PlanVerificationError, match="dtype-mismatch"):
                verify_model(model, compiled.config).raise_if_failed()
        finally:
            model.noise.weight = saved


def _warm_state(compiled, layout="stack", num_stacks=2, seed=5):
    state = compiled.new_incremental_state(num_stacks, layout=layout)
    rng = np.random.default_rng(seed)
    stack = rng.random((num_stacks, WINDOW, NUM_VARIATES))
    state.rebuild(stack, np.arange(WINDOW, dtype=np.float64))
    state.score()
    return state


def _kinds(issues):
    return {issue.kind for issue in issues}


class TestStateDiagnostics:
    def test_clean_state_has_no_issues(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        assert check_state(state) == []

    def test_aliased_workspace_slots(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        buffer = np.empty((4, 4))
        state.arena._buffers["alias.a"] = buffer
        state.arena._buffers["alias.b"] = buffer[1:]
        issues = check_state(state)
        assert "workspace-alias" in _kinds(issues)
        assert any("alias.a" in issue.location and "alias.b" in issue.location for issue in issues)

    def test_workspace_overlapping_history_ring(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        state.arena._buffers["evil"] = state._values[:, :3]
        issues = check_state(state)
        assert any(
            issue.kind == "workspace-alias" and "_values" in issue.location for issue in issues
        )

    def test_wrong_workspace_dtype(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        state.arena._buffers["model.residual"] = np.empty(
            state.arena._buffers["model.residual"].shape, dtype=np.float32
        )
        assert "dtype-mismatch" in _kinds(check_state(state))

    def test_truncated_ring_is_out_of_bounds(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        state._values = state._values[:, :WINDOW]
        assert "ring-bounds" in _kinds(check_state(state))

    def test_corrupt_counters_are_out_of_bounds(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        state.count = WINDOW + 3
        assert "ring-bounds" in _kinds(check_state(state))
        state.count = WINDOW
        state.pos = WINDOW - 1
        assert "ring-bounds" in _kinds(check_state(state))

    def test_diverged_mirror_halves(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        state._values[:, 0] += 1.0
        issues = check_state(state)
        assert any(
            issue.kind == "ring-mirror" and "_values" in issue.location for issue in issues
        )

    def test_mislaid_errors_workspace(self, compiled_models):
        # A multivariate model in "stack" layout stages errors transposed —
        # the raw workspace is (S, omega, N); a C-ordered (S, N, omega)
        # buffer is score_windows' world and would shift the GCN by an ulp.
        state = _warm_state(compiled_models("no_univariate_input"), layout="stack")
        assert "model.errors" in state.arena._buffers
        assert state.arena._buffers["model.errors"].shape == (state.num_stacks, SHORT, NUM_VARIATES)
        state.arena._buffers["model.errors"] = np.empty(
            (state.num_stacks, NUM_VARIATES, SHORT), dtype=state.dtype
        )
        assert "layout-mismatch" in _kinds(check_state(state))

    def test_steady_state_reallocation_is_flagged(self, compiled_models):
        state = _warm_state(compiled_models("full"))
        arena = TrackingArena()
        arena._buffers.update(state.arena._buffers)
        state.arena = arena
        arena.steady = True
        arena.get("model.residual", (9, 9), state.dtype)  # geometry drifted
        assert "workspace-realloc" in _kinds(check_state(state))


class TestDriveDiagnostics:
    def test_score_divergence_is_caught_at_the_bit_level(self, compiled_models, monkeypatch):
        compiled = compiled_models("full")
        original = IncrementalState.score

        def skewed(self):
            return original(self) + 1e-12  # one part in 10^12: invisible to allclose

        monkeypatch.setattr(IncrementalState, "score", skewed)
        report = verify_model(compiled.model, compiled.config)
        assert "score-divergence" in report.kinds()

    def test_drive_crash_is_reported_not_raised(self, compiled_models, monkeypatch):
        compiled = compiled_models("full")

        def explode(self):
            raise RuntimeError("kernel corrupted")

        monkeypatch.setattr(IncrementalState, "score", explode)
        report = verify_model(compiled.model, compiled.config)
        assert "drive-failure" in report.kinds()
        assert any("kernel corrupted" in issue.message for issue in report.issues)
