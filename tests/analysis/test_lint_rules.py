"""Lint framework tests: per-rule fixtures, suppressions, CLI, mutation checks.

Each rule gets a positive (flagged) and negative (clean) in-memory fixture;
the suppression machinery is tested both ways (a used ``allow`` silences,
a stale one is itself a finding); and the *mutation checks* prove the gate
has teeth on the real tree — injecting a wall-clock read into
``FleetManager.step`` or an allocation into an incremental kernel must
produce a named finding through the registered hot-path manifest.
"""

from pathlib import Path

import pytest

from repro.analysis import DEFAULT_TARGETS, hot_path, lint_paths, lint_source
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_of(findings):
    return [finding.rule for finding in findings]


def lint_named(source, path="src/repro/somewhere/module.py"):
    return lint_source(source, path=path)


# ----------------------------------------------------------------------
# determinism rules
# ----------------------------------------------------------------------
class TestWallClock:
    def test_flags_wall_clock_reads(self):
        findings = lint_named("import time\nstart = time.time()\n")
        assert rules_of(findings) == ["wallclock"]
        assert findings[0].line == 2

    def test_flags_datetime_now(self):
        source = "from datetime import datetime\nstamp = datetime.now()\n"
        assert rules_of(lint_named(source)) == ["wallclock"]

    def test_monotonic_clocks_are_fine(self):
        source = "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n"
        assert lint_named(source) == []


class TestUnseededRng:
    def test_flags_stdlib_random_import(self):
        assert rules_of(lint_named("import random\n")) == ["unseeded-rng"]
        assert rules_of(lint_named("from random import shuffle\n")) == ["unseeded-rng"]

    def test_flags_global_numpy_stream(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(lint_named(source)) == ["unseeded-rng"]

    def test_flags_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_named(source)) == ["unseeded-rng"]

    def test_flags_legacy_random_state(self):
        source = "import numpy as np\nrng = np.random.RandomState(0)\n"
        assert rules_of(lint_named(source)) == ["unseeded-rng"]

    def test_seeded_generator_api_is_fine(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "gen = np.random.Generator(np.random.PCG64(7))\n"
        )
        assert lint_named(source) == []


class TestIdKey:
    def test_flags_id_calls(self):
        source = "cache = {}\ncache[id(obj)] = value\n"
        assert rules_of(lint_named(source)) == ["id-key"]

    def test_attribute_named_id_is_fine(self):
        source = "key = record.id\nother = record.id()\n"
        assert lint_named(source) == []


class TestSetOrder:
    def test_flags_for_loop_over_set(self):
        assert rules_of(lint_named("for x in {1, 2, 3}:\n    pass\n")) == ["set-order"]

    def test_flags_list_of_set_and_join(self):
        source = "names = list({'a', 'b'})\njoined = ','.join(set(items))\n"
        assert rules_of(lint_named(source)) == ["set-order", "set-order"]

    def test_flags_comprehension_over_set_algebra(self):
        source = "out = [x for x in set(a) | set(b)]\n"
        assert rules_of(lint_named(source)) == ["set-order"]

    def test_sorted_set_is_fine(self):
        source = "for x in sorted({1, 2, 3}):\n    pass\nout = sorted(set(a) & set(b))\n"
        assert lint_named(source) == []


# ----------------------------------------------------------------------
# hot-path rules
# ----------------------------------------------------------------------
class TestHotPathRules:
    def test_decorated_function_may_not_allocate(self):
        source = (
            "import numpy as np\n"
            "from repro.analysis import hot_path\n"
            "@hot_path\n"
            "def tick(x):\n"
            "    return np.zeros(4) + x\n"
        )
        assert "hot-alloc" in rules_of(lint_named(source, path="scratch.py"))

    def test_unregistered_function_may_allocate(self):
        source = "import numpy as np\ndef setup():\n    return np.zeros(4)\n"
        assert lint_named(source, path="scratch.py") == []

    def test_nested_function_is_not_hot(self):
        source = (
            "import numpy as np\n"
            "from repro.analysis import hot_path\n"
            "@hot_path\n"
            "def tick(x):\n"
            "    def setup():\n"
            "        return np.zeros(4)\n"
            "    return x\n"
        )
        assert lint_named(source, path="scratch.py") == []

    def test_allocating_methods_flagged(self):
        source = (
            "from repro.analysis import hot_path\n"
            "@hot_path\n"
            "def tick(x):\n"
            "    return x.astype('int64')\n"
        )
        assert rules_of(lint_named(source, path="scratch.py")) == ["hot-alloc"]

    def test_strict_tier_requires_out(self):
        source = (
            "import numpy as np\n"
            "from repro.analysis import hot_path\n"
            "@hot_path(tier='strict')\n"
            "def kernel(a, b, buf):\n"
            "    np.add(a, b, out=buf)\n"
            "    return np.multiply(buf, 2.0)\n"
        )
        findings = lint_named(source, path="scratch.py")
        assert rules_of(findings) == ["hot-ufunc-out"]
        assert "np.multiply" in findings[0].message

    def test_alloc_tier_does_not_require_out(self):
        source = (
            "import numpy as np\n"
            "from repro.analysis import hot_path\n"
            "@hot_path\n"
            "def step(a, b):\n"
            "    return np.add(a, b)\n"
        )
        assert lint_named(source, path="scratch.py") == []

    def test_manifest_matches_by_path_suffix_and_qualname(self):
        # Any file whose path ends in repro/streaming/fleet.py has
        # FleetManager.step registered, whatever directory prefix it's under.
        source = (
            "import numpy as np\n"
            "class FleetManager:\n"
            "    def step(self, rows):\n"
            "        return np.zeros(3)\n"
        )
        findings = lint_source(source, path="anywhere/src/repro/streaming/fleet.py")
        assert rules_of(findings) == ["hot-alloc"]
        assert lint_source(source, path="src/other/fleet.py") == []

    def test_decorator_is_runtime_identity(self):
        @hot_path(tier="strict")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__hot_path_tier__ == "strict"
        with pytest.raises(ValueError, match="tier"):
            hot_path(tier="molten")


# ----------------------------------------------------------------------
# numerics rules
# ----------------------------------------------------------------------
class TestNanTransparency:
    def test_flags_nan_to_num(self):
        source = "import numpy as np\nclean = np.nan_to_num(scores)\n"
        assert rules_of(lint_named(source)) == ["nan-transparency"]

    def test_flags_nan_equality(self):
        source = "import numpy as np\nbad = scores == np.nan\nworse = x != float('nan')\n"
        assert rules_of(lint_named(source)) == ["nan-transparency", "nan-transparency"]

    def test_isnan_masking_is_fine(self):
        source = "import numpy as np\nmask = np.isnan(scores)\nok = np.isfinite(scores)\n"
        assert lint_named(source) == []


class TestFloat32Literal:
    def test_flags_float32_in_bit_equality_modules(self):
        source = (
            "import numpy as np\n"
            "a = np.zeros(3, dtype=np.float32)\n"
            "b = x.astype('float32')\n"
            "c = np.float32(1.5)\n"
        )
        findings = lint_source(source, path="src/repro/runtime/custom.py")
        assert rules_of(findings) == ["float32-literal"] * 3

    def test_dtype_resolution_tuple_is_fine(self):
        # compiler.py's `np.dtype(np.float32)` names the dtype without
        # casting anything into it.
        source = "import numpy as np\nSUPPORTED = (np.dtype(np.float64), np.dtype(np.float32))\n"
        assert lint_source(source, path="src/repro/runtime/custom.py") == []

    def test_outside_bit_equality_paths_is_fine(self):
        source = "import numpy as np\na = np.zeros(3, dtype=np.float32)\n"
        assert lint_source(source, path="benchmarks/mem_bench.py") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_allow_silences_same_line_finding(self):
        source = "import time\nstamp = time.time()  # repro: allow[wallclock] -- report stamp\n"
        assert lint_named(source) == []

    def test_allow_takes_multiple_rules(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand(int(np.nan_to_num(3.0)))"
            "  # repro: allow[unseeded-rng, nan-transparency] -- fixture\n"
        )
        assert lint_named(source) == []

    def test_allow_for_wrong_rule_does_not_silence(self):
        source = "import time\nstamp = time.time()  # repro: allow[unseeded-rng]\n"
        assert sorted(rules_of(lint_named(source))) == ["unused-suppression", "wallclock"]

    def test_stale_allow_is_a_finding(self):
        source = "x = 1  # repro: allow[wallclock] -- nothing here anymore\n"
        findings = lint_named(source)
        assert rules_of(findings) == ["unused-suppression"]
        assert "allow[wallclock]" in findings[0].message

    def test_allow_inside_string_literal_is_ignored(self):
        source = 'text = "# repro: allow[wallclock]"\n'
        assert lint_named(source) == []

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_named("def broken(:\n")
        assert rules_of(findings) == ["syntax-error"]


# ----------------------------------------------------------------------
# CLI + repo self-check
# ----------------------------------------------------------------------
class TestCli:
    def test_committed_tree_is_clean(self):
        """The blocking CI gate: the repo's own tree must lint clean."""
        targets = [REPO_ROOT / target for target in DEFAULT_TARGETS]
        findings, files_checked = lint_paths([t for t in targets if t.exists()])
        assert files_checked > 50
        assert findings == [], "\n".join(finding.format() for finding in findings)

    def test_main_exits_zero_on_clean_tree(self, capsys):
        targets = [str(REPO_ROOT / target) for target in DEFAULT_TARGETS]
        assert analysis_main(targets) == 0
        assert "clean" in capsys.readouterr().out

    def test_main_reports_findings_and_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        report = tmp_path / "findings.txt"
        assert analysis_main([str(bad), "--report", str(report)]) == 1
        out = capsys.readouterr().out
        assert "wallclock" in out
        assert "bad.py:2" in out
        assert "wallclock" in report.read_text()

    def test_rules_catalogue(self, capsys):
        assert analysis_main(["--rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "wallclock", "unseeded-rng", "id-key", "set-order", "hot-alloc",
            "hot-ufunc-out", "nan-transparency", "float32-literal", "unused-suppression",
        ):
            assert f"{name}:" in out


class TestMutationChecks:
    """Injected violations into the *real* tree must produce named findings."""

    def _mutate(self, relative, anchor, injected):
        source = (REPO_ROOT / relative).read_text(encoding="utf-8")
        assert anchor in source, f"anchor not found in {relative}"
        return source.replace(anchor, anchor + "\n" + injected, 1)

    def test_wall_clock_in_fleet_step_is_caught(self):
        mutated = self._mutate(
            "src/repro/streaming/fleet.py",
            "        with self._tracer.span(\"fleet.forward\"):",
            "            _leak = time.time()",
        )
        findings = lint_source(mutated, path="src/repro/streaming/fleet.py")
        assert "wallclock" in rules_of(findings)

    def test_allocation_in_incremental_kernel_is_caught(self):
        mutated = self._mutate(
            "src/repro/runtime/incremental.py",
            "def _ws_linear(arena: ScratchArena, name: str, x, weight, bias):",
            "    staging = np.empty(x.shape, dtype=x.dtype)",
        )
        findings = lint_source(mutated, path="src/repro/runtime/incremental.py")
        assert "hot-alloc" in rules_of(findings)

    def test_out_less_ufunc_in_strict_kernel_is_caught(self):
        mutated = self._mutate(
            "src/repro/runtime/incremental.py",
            "def _sigmoid_inplace(out):",
            "    probe = np.exp(out)",
        )
        findings = lint_source(mutated, path="src/repro/runtime/incremental.py")
        assert "hot-ufunc-out" in rules_of(findings)
