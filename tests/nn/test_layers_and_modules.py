"""Unit tests for layers, the module system, optimizers, losses and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    FeedForward,
    GELU,
    LayerNorm,
    Linear,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    clip_grad_norm,
    gaussian_nll,
    huber_loss,
    kl_divergence_normal,
    load_module,
    mae_loss,
    mse_loss,
    save_module,
)


RNG = np.random.default_rng(0)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=RNG)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_batched_input(self):
        layer = Linear(4, 3, rng=RNG)
        assert layer(Tensor(np.zeros((2, 7, 4)))).shape == (2, 7, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_computation(self):
        layer = Linear(2, 2, rng=RNG)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        layer = LayerNorm(8)
        out = layer(Tensor(RNG.normal(size=(3, 8)) * 10 + 5)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(3), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(3), atol=1e-2)

    def test_learnable_affine(self):
        layer = LayerNorm(4)
        layer.gamma.data = np.full(4, 2.0)
        layer.beta.data = np.full(4, 1.0)
        out = layer(Tensor(RNG.normal(size=(2, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(2), atol=1e-6)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = RNG.normal(size=(4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_train_mode_zeroes_some_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 10)))).data
        assert (out == 0).any()
        # Inverted dropout keeps the expectation approximately constant.
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestActivationsAndContainers:
    def test_activation_wrappers(self):
        x = Tensor(np.array([-1.0, 0.0, 1.0]))
        assert (ReLU()(x).data >= 0).all()
        assert np.isfinite(GELU()(x).data).all()
        assert (np.abs(Tanh()(x).data) <= 1).all()
        assert ((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1)).all()

    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 5, rng=RNG), ReLU(), Linear(5, 2, rng=RNG))
        assert model(Tensor(np.zeros((4, 3)))).shape == (4, 2)
        assert len(model) == 3

    def test_feed_forward_shapes_and_activations(self):
        for activation in ("relu", "gelu", "tanh"):
            ff = FeedForward(6, 12, activation=activation, rng=RNG)
            assert ff(Tensor(np.zeros((2, 6)))).shape == (2, 6)

    def test_feed_forward_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            FeedForward(4, activation="swish")

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb([1, 3, 3])
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])


class TestModuleSystem:
    def test_parameters_discovered_recursively(self):
        model = Sequential(Linear(3, 4, rng=RNG), Linear(4, 2, rng=RNG))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4
        assert any("layers.0.weight" in name for name in names)

    def test_num_parameters(self):
        layer = Linear(3, 4, rng=RNG)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.2), Linear(2, 2, rng=RNG))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=RNG)
        loss = layer(Tensor(np.ones((1, 2)))).sum()
        loss.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        source = Linear(3, 3, rng=np.random.default_rng(1))
        target = Linear(3, 3, rng=np.random.default_rng(2))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(3, 3, rng=RNG)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        layer = Linear(3, 3, rng=RNG)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})

    def test_parameter_always_requires_grad(self):
        from repro.nn import no_grad

        with no_grad():
            param = Parameter(np.zeros(3))
        assert param.requires_grad


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = Sequential(Linear(3, 4, rng=np.random.default_rng(5)), Linear(4, 1, rng=np.random.default_rng(6)))
        path = save_module(model, tmp_path / "model.npz")
        fresh = Sequential(Linear(3, 4, rng=np.random.default_rng(7)), Linear(4, 1, rng=np.random.default_rng(8)))
        load_module(fresh, path)
        for (_, a), (_, b) in zip(model.named_parameters(), fresh.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)


class TestOptimizers:
    def _make_regression(self, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(128, 3))
        w = np.array([[1.0], [-2.0], [0.5]])
        return X, X @ w

    def test_sgd_reduces_loss(self):
        X, Y = self._make_regression()
        layer = Linear(3, 1, rng=np.random.default_rng(1))
        opt = SGD(layer.parameters(), lr=0.05, momentum=0.9)
        first = None
        for _ in range(100):
            loss = mse_loss(layer(Tensor(X)), Tensor(Y))
            first = first if first is not None else loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.01

    def test_adam_reduces_loss(self):
        X, Y = self._make_regression(seed=2)
        layer = Linear(3, 1, rng=np.random.default_rng(3))
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            loss = mse_loss(layer(Tensor(X)), Tensor(Y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(2, 2, rng=RNG)
        layer.weight.data = np.ones((2, 2))
        opt = SGD(layer.parameters(), lr=0.1, weight_decay=1.0)
        loss = (layer(Tensor(np.zeros((1, 2)))) * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert (np.abs(layer.weight.data) < 1.0).all()

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_negative_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD(Linear(2, 2, rng=RNG).parameters(), lr=-1.0)

    def test_clip_grad_norm(self):
        layer = Linear(2, 2, rng=RNG)
        (layer(Tensor(np.ones((1, 2)) * 100)).sum()).backward()
        norm_before = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm_before > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in layer.parameters() if p.grad is not None))
        assert total <= 1.0 + 1e-8


class TestLosses:
    def test_mse_zero_for_identical(self):
        x = Tensor(RNG.normal(size=(3, 3)))
        assert mse_loss(x, x.copy()).item() == pytest.approx(0.0)

    def test_mse_value(self):
        assert mse_loss(Tensor([1.0, 2.0]), Tensor([3.0, 2.0])).item() == pytest.approx(2.0)

    def test_mae_value(self):
        assert mae_loss(Tensor([1.0, 5.0]), Tensor([2.0, 2.0])).item() == pytest.approx(2.0)

    def test_huber_between_mae_and_mse(self):
        prediction = Tensor([0.0, 10.0])
        target = Tensor([0.0, 0.0])
        value = huber_loss(prediction, target, delta=1.0).item()
        assert 0.0 < value < mse_loss(prediction, target).item()

    def test_kl_divergence_zero_for_standard_normal(self):
        mean = Tensor(np.zeros((2, 3)))
        log_var = Tensor(np.zeros((2, 3)))
        assert kl_divergence_normal(mean, log_var).item() == pytest.approx(0.0)

    def test_gaussian_nll_decreases_when_prediction_matches(self):
        target = Tensor(np.zeros((4,)))
        good = gaussian_nll(target, Tensor(np.zeros(4)), Tensor(np.zeros(4)))
        bad = gaussian_nll(target, Tensor(np.full(4, 3.0)), Tensor(np.zeros(4)))
        assert good.item() < bad.item()
