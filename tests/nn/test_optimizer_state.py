"""Optimizer state (de)serialization: the foundation of resumable training."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor, load_optimizer, mse_loss, save_optimizer


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(16, 4)))
    y = Tensor(rng.normal(size=(16, 2)))
    return x, y


def train_steps(model, optimizer, x, y, steps):
    for _ in range(steps):
        loss = mse_loss(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


class TestAdamState:
    def test_roundtrip_resumes_bit_identically(self, tmp_path):
        x, y = make_problem()
        # Reference: 6 uninterrupted steps.
        ref = Linear(4, 2, rng=np.random.default_rng(1))
        ref_opt = Adam(ref.parameters(), lr=0.05)
        train_steps(ref, ref_opt, x, y, 6)

        # Interrupted: 3 steps, checkpoint, rebuild, 3 more.
        a = Linear(4, 2, rng=np.random.default_rng(1))
        opt_a = Adam(a.parameters(), lr=0.05)
        train_steps(a, opt_a, x, y, 3)
        save_optimizer(opt_a, tmp_path / "opt.npz")
        weights = a.state_dict()

        b = Linear(4, 2, rng=np.random.default_rng(2))
        b.load_state_dict(weights)
        opt_b = Adam(b.parameters(), lr=0.05)
        load_optimizer(opt_b, tmp_path / "opt.npz")
        train_steps(b, opt_b, x, y, 3)

        for name, value in ref.state_dict().items():
            np.testing.assert_array_equal(value, b.state_dict()[name], err_msg=name)

    def test_state_dict_contains_step_and_moments(self):
        model = Linear(3, 1)
        optimizer = Adam(model.parameters(), lr=0.01)
        x, y = make_problem()
        state = optimizer.state_dict()
        assert int(state["step"]) == 0
        assert {k for k in state if k.startswith("m.")} == {"m.0", "m.1"}
        # state_dict returns copies: training must not mutate an old snapshot.
        train_steps(model, optimizer, Tensor(np.ones((4, 3))), Tensor(np.ones((4, 1))), 1)
        assert int(state["step"]) == 0
        np.testing.assert_array_equal(state["m.0"], np.zeros_like(state["m.0"]))

    def test_mismatched_state_is_rejected(self, tmp_path):
        big = Linear(8, 8)
        opt_big = Adam(big.parameters(), lr=0.01)
        save_optimizer(opt_big, tmp_path / "opt.npz")

        small = Linear(2, 2)
        opt_small = Adam(small.parameters(), lr=0.01)
        with pytest.raises(ValueError, match="opt.npz"):
            load_optimizer(opt_small, tmp_path / "opt.npz")

        extra = Linear(2, 2, bias=False)
        opt_extra = Adam(extra.parameters(), lr=0.01)
        with pytest.raises(KeyError, match="unexpected"):
            load_optimizer(opt_extra, tmp_path / "opt.npz")

    def test_negative_step_rejected(self):
        model = Linear(2, 2)
        optimizer = Adam(model.parameters(), lr=0.01)
        state = optimizer.state_dict()
        state["step"] = np.asarray(-1)
        with pytest.raises(ValueError, match="step"):
            optimizer.load_state_dict(state)


class TestSGDState:
    def test_momentum_roundtrip_resumes_bit_identically(self, tmp_path):
        x, y = make_problem()
        ref = Linear(4, 2, rng=np.random.default_rng(1))
        ref_opt = SGD(ref.parameters(), lr=0.05, momentum=0.9)
        train_steps(ref, ref_opt, x, y, 6)

        a = Linear(4, 2, rng=np.random.default_rng(1))
        opt_a = SGD(a.parameters(), lr=0.05, momentum=0.9)
        train_steps(a, opt_a, x, y, 3)
        save_optimizer(opt_a, tmp_path / "sgd.npz")

        b = Linear(4, 2, rng=np.random.default_rng(3))
        b.load_state_dict(a.state_dict())
        opt_b = SGD(b.parameters(), lr=0.05, momentum=0.9)
        load_optimizer(opt_b, tmp_path / "sgd.npz")
        train_steps(b, opt_b, x, y, 3)

        for name, value in ref.state_dict().items():
            np.testing.assert_array_equal(value, b.state_dict()[name], err_msg=name)

    def test_velocity_keys(self):
        model = Linear(3, 2)
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.5)
        assert set(optimizer.state_dict()) == {"velocity.0", "velocity.1"}

    def test_missing_file_raises(self, tmp_path):
        model = Linear(2, 2)
        optimizer = SGD(model.parameters(), lr=0.1)
        with pytest.raises(FileNotFoundError):
            load_optimizer(optimizer, tmp_path / "missing.npz")
