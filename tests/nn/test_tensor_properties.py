"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_side), st.integers(1, max_side)),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_commutative(values):
    a, b = Tensor(values), Tensor(values * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mul_matches_numpy(values):
    result = (Tensor(values) * Tensor(values)).data
    np.testing.assert_allclose(result, values * values)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_matches_numpy(values):
    np.testing.assert_allclose(Tensor(values).sum().item(), values.sum(), rtol=1e-10, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_matches_numpy(values):
    np.testing.assert_allclose(Tensor(values).mean().item(), values.mean(), rtol=1e-10, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_probability_distribution(values):
    out = Tensor(values).softmax(axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(values.shape[0]), atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sigmoid_bounded(values):
    out = Tensor(values).sigmoid().data
    assert ((out > 0) & (out < 1)).all()


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_non_negative_and_idempotent(values):
    once = Tensor(values).relu()
    twice = once.relu()
    assert (once.data >= 0).all()
    np.testing.assert_allclose(once.data, twice.data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_preserves_values(values):
    flat = Tensor(values).reshape(values.size)
    np.testing.assert_allclose(np.sort(flat.data), np.sort(values.ravel()))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_transpose_involutive(values):
    t = Tensor(values)
    np.testing.assert_allclose(t.T.T.data, values)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=3))
def test_sum_gradient_is_ones(values):
    t = Tensor(values, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(values))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=3))
def test_linear_combination_gradient(values):
    t = Tensor(values, requires_grad=True)
    (t * 3.0 + 1.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(values, 3.0))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=3), small_arrays(max_side=3))
def test_concat_then_split_preserves_data(a, b):
    if a.shape[0] != b.shape[0]:
        b = np.resize(b, (a.shape[0], b.shape[1]))
    out = Tensor.concat([Tensor(a), Tensor(b)], axis=1)
    np.testing.assert_allclose(out.data[:, : a.shape[1]], a)
    np.testing.assert_allclose(out.data[:, a.shape[1]:], b)
