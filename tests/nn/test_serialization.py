"""Module (de)serialization: ``save_module``/``load_module`` hardening.

``load_module`` must fail with descriptive, actionable errors — naming the
checkpoint path, the module class and the offending parameter names — for
every malformed-archive case, instead of surfacing cryptic numpy failures.
"""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    load_arrays,
    load_module,
    save_arrays,
    save_module,
)


def _small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))


class TestRoundTrip:
    def test_save_and_load_restores_parameters(self, tmp_path):
        source = _small_model(seed=1)
        target = _small_model(seed=2)
        path = save_module(source, tmp_path / "model.npz")
        load_module(target, path)
        for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_save_arrays_round_trips_dotted_keys(self, tmp_path):
        arrays = {"model.layers.0.weight": np.arange(6.0), "meta": np.array("x")}
        path = save_arrays(tmp_path / "arrays.npz", arrays)
        restored = load_arrays(path)
        assert set(restored) == set(arrays)
        np.testing.assert_array_equal(restored["model.layers.0.weight"], arrays["model.layers.0.weight"])


class TestLoadModuleErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            load_module(_small_model(), tmp_path / "absent.npz")

    def test_corrupt_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not an npz file")
        with pytest.raises(ValueError, match="not a readable .npz checkpoint"):
            load_module(_small_model(), path)

    def test_missing_keys_are_named(self, tmp_path):
        model = _small_model()
        state = model.state_dict()
        del state["layers.1.bias"]
        path = save_arrays(tmp_path / "partial.npz", state)
        with pytest.raises(KeyError, match="missing parameters.*layers.1.bias"):
            load_module(_small_model(), path)

    def test_unexpected_keys_are_named(self, tmp_path):
        model = _small_model()
        state = model.state_dict()
        state["layers.9.weight"] = np.zeros(3)
        path = save_arrays(tmp_path / "extra.npz", state)
        with pytest.raises(KeyError, match="unexpected parameters.*layers.9.weight"):
            load_module(_small_model(), path)

    def test_shape_mismatch_is_named_with_shapes(self, tmp_path):
        model = _small_model()
        state = model.state_dict()
        state["layers.0.weight"] = np.zeros((5, 8))
        path = save_arrays(tmp_path / "badshape.npz", state)
        with pytest.raises(ValueError, match=r"layers.0.weight \(expected \(4, 8\), got \(5, 8\)\)"):
            load_module(_small_model(), path)

    def test_error_names_module_class_and_path(self, tmp_path):
        path = save_arrays(tmp_path / "empty.npz", {"bogus": np.zeros(1)})
        with pytest.raises(KeyError, match="Sequential"):
            load_module(_small_model(), path)

    def test_nothing_is_written_on_mismatch(self, tmp_path):
        # Validation must run before any parameter is assigned.
        model = _small_model(seed=3)
        before = {name: param.data.copy() for name, param in model.named_parameters()}
        state = model.state_dict()
        state["layers.0.weight"] = np.zeros((9, 9))
        path = save_arrays(tmp_path / "badshape.npz", state)
        with pytest.raises(ValueError):
            load_module(model, path)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])


class TestModuleStateDictErrors:
    def test_load_state_dict_still_validates_directly(self):
        model = _small_model()
        state = model.state_dict()
        state.pop("layers.0.bias")
        with pytest.raises(KeyError, match="missing"):
            _small_model().load_state_dict(state)
