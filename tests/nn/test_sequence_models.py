"""Unit tests for attention, Transformer blocks, recurrent, graph and conv layers."""

import numpy as np
import pytest

from repro.nn import (
    Conv1d,
    Conv2d,
    GCNLayer,
    GRU,
    GRUCell,
    GraphAttentionLayer,
    LSTM,
    LSTMCell,
    MultiHeadAttention,
    Tensor,
    TransformerDecoder,
    TransformerDecoderLayer,
    TransformerEncoder,
    TransformerEncoderLayer,
    mse_loss,
    normalize_adjacency,
    scaled_dot_product_attention,
)

RNG = np.random.default_rng(0)


class TestAttention:
    def test_scaled_dot_product_shapes(self):
        q = Tensor(RNG.normal(size=(2, 5, 8)))
        out = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)

    def test_attention_weights_sum_to_one(self):
        q = Tensor(RNG.normal(size=(2, 5, 8)))
        _, weights = scaled_dot_product_attention(q, q, q, return_weights=True)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 5)), atol=1e-10)

    def test_attention_mask_excludes_positions(self):
        q = Tensor(RNG.normal(size=(1, 4, 8)))
        mask = np.zeros((1, 4, 4), dtype=bool)
        mask[:, :, -1] = True
        _, weights = scaled_dot_product_attention(q, q, q, mask=mask, return_weights=True)
        np.testing.assert_allclose(weights.data[:, :, -1], np.zeros((1, 4)), atol=1e-6)

    def test_multi_head_attention_shape(self):
        mha = MultiHeadAttention(d_model=8, num_heads=2, rng=RNG)
        x = Tensor(RNG.normal(size=(3, 6, 8)))
        assert mha(x, x, x).shape == (3, 6, 8)

    def test_multi_head_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(d_model=10, num_heads=3)

    def test_last_attention_stored(self):
        mha = MultiHeadAttention(d_model=8, num_heads=2, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        mha(x, x, x)
        assert mha.last_attention.shape == (1, 2, 4, 4)

    def test_attention_gradients_flow(self):
        mha = MultiHeadAttention(d_model=8, num_heads=2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        loss = mse_loss(mha(x, x, x), Tensor(np.zeros((2, 4, 8))))
        loss.backward()
        assert all(p.grad is not None for p in mha.parameters())


class TestTransformerBlocks:
    def test_encoder_layer_shape(self):
        layer = TransformerEncoderLayer(d_model=8, num_heads=2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 6, 8)))
        assert layer(x).shape == (2, 6, 8)

    def test_decoder_layer_uses_memory(self):
        enc = TransformerEncoderLayer(d_model=8, num_heads=2, rng=RNG)
        dec = TransformerDecoderLayer(d_model=8, num_heads=2, rng=RNG)
        memory = enc(Tensor(RNG.normal(size=(2, 10, 8))))
        out = dec(Tensor(RNG.normal(size=(2, 4, 8))), memory)
        assert out.shape == (2, 4, 8)

    def test_stacked_encoder_decoder(self):
        encoder = TransformerEncoder(d_model=8, num_heads=2, num_layers=2, rng=RNG)
        decoder = TransformerDecoder(d_model=8, num_heads=2, num_layers=2, rng=RNG)
        memory = encoder(Tensor(RNG.normal(size=(1, 7, 8))))
        assert decoder(Tensor(RNG.normal(size=(1, 3, 8))), memory).shape == (1, 3, 8)

    def test_encoder_gradients_flow(self):
        encoder = TransformerEncoder(d_model=8, num_heads=2, num_layers=1, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        mse_loss(encoder(x), Tensor(np.zeros((2, 5, 8)))).backward()
        assert all(p.grad is not None for p in encoder.parameters())

    def test_encoder_can_overfit_small_mapping(self):
        from repro.nn import Adam, Linear

        rng = np.random.default_rng(1)
        encoder = TransformerEncoderLayer(d_model=4, num_heads=2, rng=rng)
        head = Linear(4, 1, rng=rng)
        x = rng.normal(size=(8, 5, 4))
        target = x.sum(axis=(1, 2), keepdims=True).reshape(8, 1, 1) * 0.05
        params = encoder.parameters() + head.parameters()
        opt = Adam(params, lr=0.01)
        losses = []
        for _ in range(60):
            out = head(encoder(Tensor(x))).mean(axis=1, keepdims=True)
            loss = mse_loss(out, Tensor(target))
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5


class TestRecurrent:
    def test_gru_cell_shape(self):
        cell = GRUCell(3, 5, rng=RNG)
        hidden = cell(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 5))))
        assert hidden.shape == (2, 5)

    def test_gru_sequence_shapes(self):
        gru = GRU(3, 5, rng=RNG)
        outputs, final = gru(Tensor(RNG.normal(size=(2, 7, 3))))
        assert outputs.shape == (2, 7, 5)
        assert final.shape == (2, 5)

    def test_gru_final_state_matches_last_output(self):
        gru = GRU(3, 5, rng=RNG)
        outputs, final = gru(Tensor(RNG.normal(size=(2, 7, 3))))
        np.testing.assert_allclose(outputs.data[:, -1, :], final.data)

    def test_lstm_cell_shapes(self):
        cell = LSTMCell(3, 4, rng=RNG)
        hidden, state = cell(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4))))
        assert hidden.shape == (2, 4)
        assert state.shape == (2, 4)

    def test_lstm_sequence(self):
        lstm = LSTM(3, 4, rng=RNG)
        outputs, (hidden, cell) = lstm(Tensor(RNG.normal(size=(2, 6, 3))))
        assert outputs.shape == (2, 6, 4)
        assert hidden.shape == (2, 4)
        assert cell.shape == (2, 4)

    def test_gru_gradients_flow(self):
        gru = GRU(2, 3, rng=RNG)
        outputs, _ = gru(Tensor(RNG.normal(size=(2, 4, 2))))
        outputs.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())


class TestGraphLayers:
    def test_normalize_adjacency_rows(self):
        adjacency = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        normalized = normalize_adjacency(adjacency)
        np.testing.assert_allclose(normalized.sum(axis=1), np.ones(3), atol=1e-6)

    def test_normalize_adjacency_removes_self_loops(self):
        adjacency = np.eye(3) + np.ones((3, 3))
        normalized = normalize_adjacency(adjacency, remove_self_loops=True)
        np.testing.assert_allclose(np.diag(normalized), np.zeros(3))

    def test_normalize_adjacency_isolated_node(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        normalized = normalize_adjacency(adjacency)
        np.testing.assert_allclose(normalized[2], np.zeros(3))

    def test_normalize_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.zeros((2, 3)))

    def test_gcn_layer_shape_and_gradient(self):
        gcn = GCNLayer(4, 4, activation="identity", rng=RNG)
        adjacency = normalize_adjacency(np.ones((5, 5)), remove_self_loops=True)
        out = gcn(Tensor(RNG.normal(size=(5, 4))), adjacency)
        assert out.shape == (5, 4)
        out.sum().backward()
        assert gcn.weight.grad is not None

    def test_gcn_activations(self):
        adjacency = normalize_adjacency(np.ones((3, 3)))
        x = Tensor(RNG.normal(size=(3, 2)))
        for activation in ("sigmoid", "relu", "tanh", "identity"):
            assert GCNLayer(2, 2, activation=activation, rng=RNG)(x, adjacency).shape == (3, 2)

    def test_gcn_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(2, 2, activation="softplus")

    def test_gcn_isolated_node_output_is_bias_only(self):
        gcn = GCNLayer(2, 2, activation="identity", rng=RNG)
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        normalized = normalize_adjacency(adjacency, remove_self_loops=True)
        out = gcn(Tensor(RNG.normal(size=(3, 2))), normalized)
        np.testing.assert_allclose(out.data[2], gcn.bias.data)

    def test_graph_attention_shape(self):
        layer = GraphAttentionLayer(4, 6, rng=RNG)
        adjacency = (RNG.random((5, 5)) > 0.5).astype(float)
        out = layer(Tensor(RNG.normal(size=(5, 4))), adjacency)
        assert out.shape == (5, 6)


class TestConvolutions:
    def test_conv1d_same_length(self):
        conv = Conv1d(2, 3, kernel_size=3, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(4, 2, 10))))
        assert out.shape == (4, 3, 10)

    def test_conv1d_channel_mismatch(self):
        conv = Conv1d(2, 3, kernel_size=3, rng=RNG)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 5, 10))))

    def test_conv1d_matches_manual_on_identity_kernel(self):
        conv = Conv1d(1, 1, kernel_size=1, rng=RNG)
        conv.weight.data = np.ones((1, 1))
        conv.bias.data = np.zeros(1)
        x = RNG.normal(size=(1, 1, 7))
        np.testing.assert_allclose(conv(Tensor(x)).data, x)

    def test_conv2d_same_spatial_shape(self):
        conv = Conv2d(2, 4, kernel_size=3, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(2, 2, 6, 5))))
        assert out.shape == (2, 4, 6, 5)

    def test_conv2d_gradients_flow(self):
        conv = Conv2d(1, 2, kernel_size=3, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(1, 1, 4, 4))))
        out.sum().backward()
        assert conv.weight.grad is not None
