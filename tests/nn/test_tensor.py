"""Unit tests for the autodiff Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled


def numeric_gradient(func, values, eps=1e-6):
    """Central-difference gradient of a scalar-valued function of a flat array."""
    values = np.asarray(values, dtype=np.float64)
    grad = np.zeros_like(values)
    for i in range(values.size):
        plus = values.copy()
        plus.flat[i] += eps
        minus = values.copy()
        minus.flat[i] -= eps
        grad.flat[i] = (func(plus) - func(minus)) / (2 * eps)
    return grad


def analytic_gradient(func_tensor, values):
    x = Tensor(values, requires_grad=True)
    out = func_tensor(x)
    out.backward()
    return x.grad


def check_gradients(func_tensor, values, atol=1e-6):
    values = np.asarray(values, dtype=np.float64)
    analytic = analytic_gradient(func_tensor, values)
    numeric = numeric_gradient(lambda v: func_tensor(Tensor(v)).item(), values)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestTensorBasics:
    def test_creation_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.ndim == 1
        assert t.size == 3

    def test_requires_grad_flag(self):
        assert not Tensor([1.0]).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_stops_gradient(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_copy_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0

    def test_backward_requires_grad_error(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestNoGrad:
    def test_no_grad_disables_tracking(self):
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor([1.0], requires_grad=True)
            out = t * 2
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()


class TestArithmeticForward:
    def test_add(self):
        np.testing.assert_allclose((Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data, [4.0, 6.0])

    def test_add_scalar(self):
        np.testing.assert_allclose((Tensor([1.0]) + 2.0).data, [3.0])

    def test_radd(self):
        np.testing.assert_allclose((2.0 + Tensor([1.0])).data, [3.0])

    def test_sub(self):
        np.testing.assert_allclose((Tensor([5.0]) - Tensor([2.0])).data, [3.0])

    def test_rsub(self):
        np.testing.assert_allclose((10.0 - Tensor([4.0])).data, [6.0])

    def test_mul(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])).data, [8.0, 15.0])

    def test_div(self):
        np.testing.assert_allclose((Tensor([6.0]) / Tensor([3.0])).data, [2.0])

    def test_rdiv(self):
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, np.array([[19.0, 22.0], [43.0, 50.0]]))

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(3, 5, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_broadcasting_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((a + b).data, np.ones((2, 3)) + np.array([1.0, 2.0, 3.0]))


class TestGradients:
    def test_add_gradient(self):
        check_gradients(lambda x: (x + x * 2).sum(), np.array([1.0, -2.0, 3.0]))

    def test_mul_gradient(self):
        check_gradients(lambda x: (x * x).sum(), np.array([1.0, -2.0, 3.0]))

    def test_div_gradient(self):
        check_gradients(lambda x: (x / (x * x + 1.0)).sum(), np.array([1.0, -2.0, 0.5]))

    def test_pow_gradient(self):
        check_gradients(lambda x: (x ** 3).sum(), np.array([1.0, 2.0, 0.5]))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(1)
        fixed = rng.normal(size=(3, 2))

        def f(x):
            return (x.reshape(2, 3) @ Tensor(fixed)).sum()

        check_gradients(f, rng.normal(size=6))

    def test_exp_gradient(self):
        check_gradients(lambda x: x.exp().sum(), np.array([0.1, -0.5, 1.0]))

    def test_log_gradient(self):
        check_gradients(lambda x: x.log().sum(), np.array([0.5, 1.5, 3.0]))

    def test_sqrt_gradient(self):
        check_gradients(lambda x: x.sqrt().sum(), np.array([0.5, 1.5, 3.0]))

    def test_abs_gradient(self):
        check_gradients(lambda x: x.abs().sum(), np.array([0.5, -1.5, 3.0]))

    def test_sigmoid_gradient(self):
        check_gradients(lambda x: x.sigmoid().sum(), np.array([0.0, -2.0, 2.0]))

    def test_tanh_gradient(self):
        check_gradients(lambda x: x.tanh().sum(), np.array([0.0, -2.0, 2.0]))

    def test_relu_gradient(self):
        check_gradients(lambda x: x.relu().sum(), np.array([0.5, -2.0, 2.0]))

    def test_gelu_gradient(self):
        check_gradients(lambda x: x.gelu().sum(), np.array([0.5, -2.0, 2.0]), atol=1e-5)

    def test_sin_cos_gradient(self):
        check_gradients(lambda x: (x.sin() + x.cos()).sum(), np.array([0.1, 1.2, -0.7]))

    def test_softmax_gradient(self):
        check_gradients(lambda x: (x.softmax() * Tensor([1.0, 2.0, 3.0])).sum(), np.array([0.1, 1.2, -0.7]))

    def test_log_softmax_gradient(self):
        check_gradients(lambda x: (x.log_softmax() * Tensor([1.0, 0.0, -1.0])).sum(), np.array([0.1, 1.2, -0.7]))

    def test_mean_gradient(self):
        check_gradients(lambda x: (x.mean() * 3.0), np.array([1.0, 2.0, 3.0, 4.0]))

    def test_var_gradient(self):
        check_gradients(lambda x: x.var(), np.array([1.0, 2.0, 3.0, 4.0]))

    def test_max_gradient(self):
        check_gradients(lambda x: x.max(), np.array([1.0, 4.0, 3.0]))

    def test_clip_gradient(self):
        check_gradients(lambda x: x.clip(-1.0, 1.0).sum(), np.array([0.5, -2.0, 2.0]))

    def test_getitem_gradient(self):
        check_gradients(lambda x: x[1:].sum(), np.array([1.0, 2.0, 3.0]))

    def test_broadcast_gradient_accumulation(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        ((a * b).sum()).backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(a.grad, np.tile([1.0, 2.0, 3.0], (2, 1)))

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])


class TestShapeOps:
    def test_reshape_roundtrip(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_reshape_gradient(self):
        check_gradients(lambda x: (x.reshape(2, 2) ** 2).sum(), np.arange(4.0))

    def test_transpose_default(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_transpose_axes_gradient(self):
        check_gradients(lambda x: (x.reshape(2, 3).transpose(1, 0) * Tensor(np.arange(6.0).reshape(3, 2))).sum(), np.arange(6.0))

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(1, 2).shape == (2, 4, 3)

    def test_expand_squeeze(self):
        t = Tensor(np.zeros((3,)))
        expanded = t.expand_dims(0)
        assert expanded.shape == (1, 3)
        assert expanded.squeeze(0).shape == (3,)

    def test_repeat_gradient_sums(self):
        x = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        y = x.repeat(3, axis=0)
        assert y.shape == (3, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [[3.0, 3.0]])

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=0, keepdims=True).shape == (1, 3)

    def test_sum_axis_gradient(self):
        check_gradients(lambda x: (x.reshape(2, 3).sum(axis=1) ** 2).sum(), np.arange(6.0))


class TestCombiningOps:
    def test_concat_forward(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert Tensor.concat([a, b], axis=1).shape == (2, 5)

    def test_concat_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [5.0, 6.0]])
        np.testing.assert_allclose(b.grad, [[2.0, 3.0, 4.0], [7.0, 8.0, 9.0]])

    def test_stack_forward_and_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = Tensor.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestNumericalStability:
    def test_sigmoid_extreme_inputs(self):
        out = Tensor([1000.0, -1000.0]).sigmoid()
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [1.0, 0.0], atol=1e-12)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        out = Tensor(rng.normal(size=(4, 7)) * 50).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_large_values_finite(self):
        out = Tensor([1e6, 1e6 + 1]).softmax()
        assert np.isfinite(out.data).all()
